
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/astgcn_lite.cc" "src/CMakeFiles/d2stgnn.dir/baselines/astgcn_lite.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/baselines/astgcn_lite.cc.o.d"
  "/root/repo/src/baselines/dcrnn.cc" "src/CMakeFiles/d2stgnn.dir/baselines/dcrnn.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/baselines/dcrnn.cc.o.d"
  "/root/repo/src/baselines/dgcrn.cc" "src/CMakeFiles/d2stgnn.dir/baselines/dgcrn.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/baselines/dgcrn.cc.o.d"
  "/root/repo/src/baselines/fc_lstm.cc" "src/CMakeFiles/d2stgnn.dir/baselines/fc_lstm.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/baselines/fc_lstm.cc.o.d"
  "/root/repo/src/baselines/gman_lite.cc" "src/CMakeFiles/d2stgnn.dir/baselines/gman_lite.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/baselines/gman_lite.cc.o.d"
  "/root/repo/src/baselines/graph_wavenet.cc" "src/CMakeFiles/d2stgnn.dir/baselines/graph_wavenet.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/baselines/graph_wavenet.cc.o.d"
  "/root/repo/src/baselines/historical_average.cc" "src/CMakeFiles/d2stgnn.dir/baselines/historical_average.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/baselines/historical_average.cc.o.d"
  "/root/repo/src/baselines/linear_svr.cc" "src/CMakeFiles/d2stgnn.dir/baselines/linear_svr.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/baselines/linear_svr.cc.o.d"
  "/root/repo/src/baselines/mtgnn_lite.cc" "src/CMakeFiles/d2stgnn.dir/baselines/mtgnn_lite.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/baselines/mtgnn_lite.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/CMakeFiles/d2stgnn.dir/baselines/registry.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/baselines/registry.cc.o.d"
  "/root/repo/src/baselines/stgcn.cc" "src/CMakeFiles/d2stgnn.dir/baselines/stgcn.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/baselines/stgcn.cc.o.d"
  "/root/repo/src/baselines/stsgcn_lite.cc" "src/CMakeFiles/d2stgnn.dir/baselines/stsgcn_lite.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/baselines/stsgcn_lite.cc.o.d"
  "/root/repo/src/baselines/var.cc" "src/CMakeFiles/d2stgnn.dir/baselines/var.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/baselines/var.cc.o.d"
  "/root/repo/src/common/check.cc" "src/CMakeFiles/d2stgnn.dir/common/check.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/common/check.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/d2stgnn.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/d2stgnn.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/common/rng.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/CMakeFiles/d2stgnn.dir/common/table_printer.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/common/table_printer.cc.o.d"
  "/root/repo/src/common/text_plot.cc" "src/CMakeFiles/d2stgnn.dir/common/text_plot.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/common/text_plot.cc.o.d"
  "/root/repo/src/core/d2stgnn.cc" "src/CMakeFiles/d2stgnn.dir/core/d2stgnn.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/core/d2stgnn.cc.o.d"
  "/root/repo/src/core/decoupled_layer.cc" "src/CMakeFiles/d2stgnn.dir/core/decoupled_layer.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/core/decoupled_layer.cc.o.d"
  "/root/repo/src/core/diffusion_block.cc" "src/CMakeFiles/d2stgnn.dir/core/diffusion_block.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/core/diffusion_block.cc.o.d"
  "/root/repo/src/core/dynamic_graph.cc" "src/CMakeFiles/d2stgnn.dir/core/dynamic_graph.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/core/dynamic_graph.cc.o.d"
  "/root/repo/src/core/estimation_gate.cc" "src/CMakeFiles/d2stgnn.dir/core/estimation_gate.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/core/estimation_gate.cc.o.d"
  "/root/repo/src/core/inherent_block.cc" "src/CMakeFiles/d2stgnn.dir/core/inherent_block.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/core/inherent_block.cc.o.d"
  "/root/repo/src/data/csv_loader.cc" "src/CMakeFiles/d2stgnn.dir/data/csv_loader.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/data/csv_loader.cc.o.d"
  "/root/repo/src/data/presets.cc" "src/CMakeFiles/d2stgnn.dir/data/presets.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/data/presets.cc.o.d"
  "/root/repo/src/data/scaler.cc" "src/CMakeFiles/d2stgnn.dir/data/scaler.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/data/scaler.cc.o.d"
  "/root/repo/src/data/sliding_window.cc" "src/CMakeFiles/d2stgnn.dir/data/sliding_window.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/data/sliding_window.cc.o.d"
  "/root/repo/src/data/synthetic_traffic.cc" "src/CMakeFiles/d2stgnn.dir/data/synthetic_traffic.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/data/synthetic_traffic.cc.o.d"
  "/root/repo/src/graph/localized_transition.cc" "src/CMakeFiles/d2stgnn.dir/graph/localized_transition.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/graph/localized_transition.cc.o.d"
  "/root/repo/src/graph/sensor_graph.cc" "src/CMakeFiles/d2stgnn.dir/graph/sensor_graph.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/graph/sensor_graph.cc.o.d"
  "/root/repo/src/graph/transition.cc" "src/CMakeFiles/d2stgnn.dir/graph/transition.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/graph/transition.cc.o.d"
  "/root/repo/src/metrics/metrics.cc" "src/CMakeFiles/d2stgnn.dir/metrics/metrics.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/metrics/metrics.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/CMakeFiles/d2stgnn.dir/nn/attention.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/nn/attention.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/CMakeFiles/d2stgnn.dir/nn/embedding.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/nn/embedding.cc.o.d"
  "/root/repo/src/nn/gru_cell.cc" "src/CMakeFiles/d2stgnn.dir/nn/gru_cell.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/nn/gru_cell.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/d2stgnn.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/CMakeFiles/d2stgnn.dir/nn/layer_norm.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/nn/layer_norm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/d2stgnn.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/lstm_cell.cc" "src/CMakeFiles/d2stgnn.dir/nn/lstm_cell.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/nn/lstm_cell.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/d2stgnn.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/d2stgnn.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/positional_encoding.cc" "src/CMakeFiles/d2stgnn.dir/nn/positional_encoding.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/nn/positional_encoding.cc.o.d"
  "/root/repo/src/optim/adam.cc" "src/CMakeFiles/d2stgnn.dir/optim/adam.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/optim/adam.cc.o.d"
  "/root/repo/src/optim/lr_scheduler.cc" "src/CMakeFiles/d2stgnn.dir/optim/lr_scheduler.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/optim/lr_scheduler.cc.o.d"
  "/root/repo/src/optim/optimizer.cc" "src/CMakeFiles/d2stgnn.dir/optim/optimizer.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/optim/optimizer.cc.o.d"
  "/root/repo/src/optim/sgd.cc" "src/CMakeFiles/d2stgnn.dir/optim/sgd.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/optim/sgd.cc.o.d"
  "/root/repo/src/tensor/autograd.cc" "src/CMakeFiles/d2stgnn.dir/tensor/autograd.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/tensor/autograd.cc.o.d"
  "/root/repo/src/tensor/grad_check.cc" "src/CMakeFiles/d2stgnn.dir/tensor/grad_check.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/tensor/grad_check.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/CMakeFiles/d2stgnn.dir/tensor/ops.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/d2stgnn.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/train/checkpoint.cc" "src/CMakeFiles/d2stgnn.dir/train/checkpoint.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/train/checkpoint.cc.o.d"
  "/root/repo/src/train/evaluator.cc" "src/CMakeFiles/d2stgnn.dir/train/evaluator.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/train/evaluator.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/CMakeFiles/d2stgnn.dir/train/trainer.cc.o" "gcc" "src/CMakeFiles/d2stgnn.dir/train/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
