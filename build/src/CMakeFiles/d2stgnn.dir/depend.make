# Empty dependencies file for d2stgnn.
# This may be replaced when dependencies are built.
