file(REMOVE_RECURSE
  "libd2stgnn.a"
)
