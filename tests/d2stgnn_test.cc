#include "core/d2stgnn.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/presets.h"
#include "data/synthetic_traffic.h"
#include "metrics/metrics.h"
#include "optim/adam.h"
#include "tensor/ops.h"

namespace d2stgnn {
namespace {

// Small synthetic setting shared by the model tests.
struct Setting {
  data::SyntheticTraffic traffic;
  data::StandardScaler scaler;
  data::SplitWindows splits;
  std::unique_ptr<data::WindowDataLoader> loader;

  explicit Setting(int64_t nodes = 8, int64_t steps = 512) {
    data::SyntheticTrafficOptions options;
    options.network.num_nodes = nodes;
    options.network.neighbors = 3;
    options.num_steps = steps;
    options.seed = 9;
    traffic = data::GenerateSyntheticTraffic(options);
    scaler.Fit(traffic.dataset.values, steps * 7 / 10, /*mask_zeros=*/true);
    splits = data::MakeChronologicalSplits(steps, 12, 12, 0.7f, 0.1f);
    loader = std::make_unique<data::WindowDataLoader>(
        &traffic.dataset, &scaler, splits.train, 12, 12, 4);
  }
};

core::D2StgnnConfig SmallConfig(int64_t nodes) {
  core::D2StgnnConfig config;
  config.num_nodes = nodes;
  config.hidden_dim = 8;
  config.embed_dim = 4;
  config.num_layers = 2;
  config.num_heads = 2;
  config.k_s = 2;
  config.k_t = 2;
  return config;
}

TEST(D2StgnnModel, ForwardShape) {
  Setting s;
  Rng rng(1);
  core::D2Stgnn model(SmallConfig(8), s.traffic.dataset.network.adjacency,
                      rng);
  const data::Batch batch = s.loader->GetBatch(0);
  Tensor out = model.Forward(batch);
  EXPECT_EQ(out.shape(), (Shape{4, 12, 8, 1}));
}

TEST(D2StgnnModel, AllVariantsForwardAndBackward) {
  Setting s;
  const data::Batch batch = s.loader->GetBatch(0);

  std::vector<core::D2StgnnConfig> variants;
  auto base = SmallConfig(8);
  variants.push_back(base);
  {
    auto v = base;
    v.inherent_first = true;
    variants.push_back(v);
  }
  {
    auto v = base;
    v.use_gate = false;
    variants.push_back(v);
  }
  {
    auto v = base;
    v.use_residual = false;
    variants.push_back(v);
  }
  variants.push_back(core::MakeCoupledConfig(base));
  variants.push_back(core::MakeStaticGraphConfig(base));
  {
    auto v = base;
    v.use_adaptive = false;
    variants.push_back(v);
  }
  {
    auto v = base;
    v.use_gru = false;
    variants.push_back(v);
  }
  {
    auto v = base;
    v.use_msa = false;
    variants.push_back(v);
  }
  {
    auto v = base;
    v.autoregressive = false;
    variants.push_back(v);
  }

  for (size_t i = 0; i < variants.size(); ++i) {
    Rng rng(100 + i);
    core::D2Stgnn model(variants[i], s.traffic.dataset.network.adjacency,
                        rng);
    Tensor pred = s.scaler.InverseTransform(model.Forward(batch));
    EXPECT_EQ(pred.shape(), (Shape{4, 12, 8, 1})) << "variant " << i;
    Tensor loss = metrics::MaskedMaeLoss(pred, batch.y);
    ASSERT_TRUE(std::isfinite(loss.Item())) << "variant " << i;
    model.ZeroGrad();
    loss.Backward();
    // Every registered parameter that participates should receive some
    // gradient mass overall.
    double grad_mass = 0.0;
    for (const Tensor& p : model.Parameters()) {
      for (float g : p.GradData()) grad_mass += std::fabs(g);
    }
    EXPECT_GT(grad_mass, 0.0) << "variant " << i;
  }
}

TEST(D2StgnnModel, AdaptiveTransitionIsRowStochastic) {
  Setting s;
  Rng rng(2);
  core::D2Stgnn model(SmallConfig(8), s.traffic.dataset.network.adjacency,
                      rng);
  NoGradGuard no_grad;
  Tensor apt = model.AdaptiveTransition();
  ASSERT_TRUE(apt.defined());
  ASSERT_EQ(apt.shape(), (Shape{8, 8}));
  for (int64_t i = 0; i < 8; ++i) {
    float row = 0.0f;
    for (int64_t j = 0; j < 8; ++j) row += apt.At({i, j});
    EXPECT_NEAR(row, 1.0f, 1e-4f);
  }
}

TEST(D2StgnnModel, LossDecreasesWithTraining) {
  Setting s;
  Rng rng(3);
  core::D2Stgnn model(SmallConfig(8), s.traffic.dataset.network.adjacency,
                      rng);
  optim::Adam adam(model.Parameters(), 5e-3f);
  const data::Batch batch = s.loader->GetBatch(0);

  float first_loss = 0.0f;
  float last_loss = 0.0f;
  for (int step = 0; step < 25; ++step) {
    Tensor pred = s.scaler.InverseTransform(model.Forward(batch));
    Tensor loss = metrics::MaskedMaeLoss(pred, batch.y);
    if (step == 0) first_loss = loss.Item();
    last_loss = loss.Item();
    adam.ZeroGrad();
    loss.Backward();
    optim::ClipGradNorm(adam.params(), 5.0f);
    adam.Step();
  }
  EXPECT_LT(last_loss, first_loss * 0.8f)
      << "first=" << first_loss << " last=" << last_loss;
}

TEST(D2StgnnModel, ParameterCountGrowsWithLayers) {
  Setting s;
  Rng rng(4);
  auto config1 = SmallConfig(8);
  config1.num_layers = 1;
  auto config2 = SmallConfig(8);
  config2.num_layers = 3;
  core::D2Stgnn m1(config1, s.traffic.dataset.network.adjacency, rng);
  core::D2Stgnn m3(config2, s.traffic.dataset.network.adjacency, rng);
  EXPECT_GT(m3.ParameterCount(), m1.ParameterCount());
}

}  // namespace
}  // namespace d2stgnn
