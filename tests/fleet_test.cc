// Tests of the multi-model fleet: the FleetArbiter's quota and
// weighted-fair dispatch policy (pure, clockless), the ModelFleet registry,
// and the FleetServer end to end — per-model bitwise routing, typed quota
// rejections under contention, SLO-class shedding at the worst tier, two
// models hot-reloading concurrently under traffic, and stats consistency
// under racing submitters (the TSan targets of scripts/ci.sh).

#include "infer/fleet/fleet.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "data/sliding_window.h"
#include "data/synthetic_traffic.h"
#include "infer/fleet/fleet_server.h"
#include "infer/retry.h"
#include "nn/linear.h"
#include "train/checkpoint.h"
#include "train/forecasting_model.h"

namespace d2stgnn {
namespace {

using ::testing::AnyOf;

// ---------------------------------------------------------------------------
// FleetArbiter: the pure arbitration policy.

TEST(FleetArbiterTest, QuotaIsWeightedShareAndArmsAtWatermark) {
  infer::FleetArbiter arbiter(/*shared_capacity=*/64,
                              /*arbitration_watermark=*/0.5);
  arbiter.AddLane("gold", /*priority=*/0, /*weight=*/4.0);
  arbiter.AddLane("silver", /*priority=*/1, /*weight=*/2.0);
  arbiter.AddLane("bronze", /*priority=*/2, /*weight=*/1.0);

  EXPECT_FALSE(arbiter.QuotaArmed(31));
  EXPECT_TRUE(arbiter.QuotaArmed(32));  // watermark * capacity
  EXPECT_TRUE(arbiter.QuotaArmed(64));

  EXPECT_EQ(arbiter.Quota("gold"), 64 * 4 / 7);
  EXPECT_EQ(arbiter.Quota("silver"), 64 * 2 / 7);
  EXPECT_EQ(arbiter.Quota("bronze"), 64 * 1 / 7);
  EXPECT_EQ(arbiter.Quota("unknown"), 0);
}

TEST(FleetArbiterTest, ExplicitQueueShareOverridesWeight) {
  infer::FleetArbiter arbiter(64, 0.5);
  arbiter.AddLane("a", 0, /*weight=*/1.0, /*queue_share=*/0.25);
  arbiter.AddLane("b", 0, /*weight=*/1.0);
  EXPECT_EQ(arbiter.Quota("a"), 16);  // 0.25 * 64, not the weight share
  EXPECT_EQ(arbiter.Quota("b"), 32);  // weight 1 of 2
}

TEST(FleetArbiterTest, UnboundedCapacityDisablesQuotas) {
  infer::FleetArbiter arbiter(/*shared_capacity=*/0, 0.5);
  arbiter.AddLane("a", 0, 1.0);
  EXPECT_FALSE(arbiter.QuotaArmed(1 << 20));
  EXPECT_GT(arbiter.Quota("a"), int64_t{1} << 60);
  // A tiny share still admits at least one request.
  infer::FleetArbiter small(/*shared_capacity=*/4, 0.5);
  small.AddLane("sliver", 0, 1.0, /*queue_share=*/0.01);
  EXPECT_EQ(small.Quota("sliver"), 1);
}

TEST(FleetArbiterTest, PickPrefersStrictPriorityThenWeightedFairness) {
  infer::FleetArbiter arbiter(64, 0.5);
  arbiter.AddLane("gold", 0, 4.0);
  arbiter.AddLane("x", 1, 2.0);
  arbiter.AddLane("y", 1, 1.0);

  // Strict priority: gold wins whenever it is ready.
  EXPECT_EQ(arbiter.Pick({"y", "x", "gold"}), "gold");
  EXPECT_EQ(arbiter.Pick({}), "");

  // Among equal priorities, dispatches split by weight: x (weight 2) gets
  // twice the batches of y (weight 1). Deterministic — count 30 rounds.
  std::map<std::string, int> dispatched;
  for (int i = 0; i < 30; ++i) {
    const std::string pick = arbiter.Pick({"x", "y"});
    ASSERT_THAT(pick, AnyOf("x", "y"));
    arbiter.Account(pick, /*batch_size=*/4);
    ++dispatched[pick];
  }
  EXPECT_EQ(dispatched["x"], 20);
  EXPECT_EQ(dispatched["y"], 10);
}

TEST(FleetArbiterTest, IdleLaneReentersAtFloorWithoutMonopolizing) {
  infer::FleetArbiter arbiter(64, 0.5);
  arbiter.AddLane("p", 0, 1.0);
  arbiter.AddLane("q", 0, 1.0);

  // q dispatches alone for a while; p is idle and accrues no credit.
  for (int i = 0; i < 5; ++i) arbiter.Account("q", 8);

  // When p wakes it is served next (it re-enters at the floor, below q's
  // virtual time) but it cannot cash in the idle time as banked credit:
  // from then on the two lanes near-alternate (p stays one ahead only via
  // the deterministic smaller-id tie-break, 6:4 over ten rounds).
  EXPECT_EQ(arbiter.Pick({"p", "q"}), "p");
  std::map<std::string, int> dispatched;
  for (int i = 0; i < 10; ++i) {
    const std::string pick = arbiter.Pick({"p", "q"});
    arbiter.Account(pick, 8);
    ++dispatched[pick];
  }
  EXPECT_EQ(dispatched["p"], 6);
  EXPECT_EQ(dispatched["q"], 4);
}

TEST(FleetSloClassTest, BuiltinsResolveByName) {
  EXPECT_EQ(infer::BuiltinSloClasses().size(), 3u);
  infer::SloClass slo;
  ASSERT_TRUE(infer::ResolveSloClass("gold", &slo));
  EXPECT_EQ(slo.priority, 0);
  EXPECT_EQ(slo.target_p99_ms, 50);
  EXPECT_EQ(slo.weight, 4.0);
  ASSERT_TRUE(infer::ResolveSloClass("bronze", &slo));
  EXPECT_EQ(slo.priority, 2);
  EXPECT_FALSE(infer::ResolveSloClass("platinum", &slo));
}

// ---------------------------------------------------------------------------
// FleetServer end to end, over the tiny batch-independent model of
// infer_server_test.cc (linear readout of the last frame, so bitwise
// comparisons across servers hold).

class TinyModel : public train::ForecastingModel {
 public:
  TinyModel(int64_t num_nodes, int64_t horizon, Rng& rng)
      : ForecastingModel("tiny"),
        num_nodes_(num_nodes),
        horizon_(horizon),
        proj_(data::kInputFeatures, horizon, rng) {
    RegisterChild(&proj_);
  }

  Tensor Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size;
    const Tensor last = Reshape(
        Slice(batch.x, 1, batch.input_len - 1, batch.input_len),
        {b, num_nodes_, data::kInputFeatures});
    Tensor out = proj_.Forward(last);
    out = Permute(out, {0, 2, 1});
    return Reshape(out, {b, horizon_, num_nodes_, 1});
  }

  int64_t horizon() const override { return horizon_; }

 private:
  int64_t num_nodes_;
  int64_t horizon_;
  nn::Linear proj_;
};

constexpr int64_t kNodes = 6;
constexpr int64_t kInputLen = 12;
constexpr int64_t kHorizon = 12;

class FleetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticTrafficOptions options;
    options.network.num_nodes = kNodes;
    options.num_steps = 600;
    options.seed = 31;
    traffic_ = data::GenerateSyntheticTraffic(options);
    scaler_.Fit(traffic_.dataset.values, 400, true);

    watch_dir_ = ::testing::TempDir() + "/fleet_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name();
    std::filesystem::remove_all(watch_dir_);
    std::filesystem::create_directories(watch_dir_);
  }

  void TearDown() override {
    fault::DisarmAllFaultPoints();
    std::filesystem::remove_all(watch_dir_);
  }

  infer::SessionOptions Options() const {
    infer::SessionOptions options;
    options.num_nodes = kNodes;
    options.input_len = kInputLen;
    options.steps_per_day = traffic_.dataset.steps_per_day;
    return options;
  }

  infer::ForecastRequest MakeRequest(int64_t start) const {
    infer::ForecastRequest request;
    const std::vector<float>& values = traffic_.dataset.values.Data();
    request.window.assign(values.data() + start * kNodes,
                          values.data() + (start + kInputLen) * kNodes);
    request.time_of_day = traffic_.dataset.TimeOfDay(start);
    request.day_of_week = traffic_.dataset.DayOfWeek(start);
    return request;
  }

  std::unique_ptr<TinyModel> NewTinyModel(uint64_t seed) const {
    Rng rng(seed);
    return std::make_unique<TinyModel>(kNodes, kHorizon, rng);
  }

  std::shared_ptr<infer::InferenceSession> NewSession(uint64_t seed) const {
    std::shared_ptr<infer::InferenceSession> session(
        infer::InferenceSession::Wrap(NewTinyModel(seed), scaler_, Options())
            .release());
    EXPECT_NE(session, nullptr);
    return session;
  }

  /// What a seed-`seed` model answers for MakeRequest(start), standalone.
  std::vector<float> Reference(uint64_t seed, int64_t start) const {
    auto session =
        infer::InferenceSession::Wrap(NewTinyModel(seed), scaler_, Options());
    EXPECT_NE(session, nullptr);
    const infer::Forecast f = session->PredictOne(MakeRequest(start));
    EXPECT_TRUE(f.ok) << f.error;
    return f.values;
  }

  /// Registers `id` with the given seed and a custom SLO (no target p99,
  /// so flush timers are exactly max_wait_us).
  void AddModel(infer::ModelFleet* fleet, const std::string& id,
                uint64_t seed, int64_t priority, double weight,
                int64_t max_wait_us = 500, int64_t max_batch_size = 4) {
    infer::FleetModelOptions options;
    options.model_id = id;
    options.slo.name = "custom-" + id;
    options.slo.priority = priority;
    options.slo.weight = weight;
    options.max_batch_size = max_batch_size;
    options.max_wait_us = max_wait_us;
    std::string error;
    ASSERT_TRUE(fleet->AddModel(NewSession(seed), options, &error)) << error;
  }

  data::SyntheticTraffic traffic_;
  data::StandardScaler scaler_;
  std::string watch_dir_;
};

TEST_F(FleetServerTest, RegistryValidatesModels) {
  infer::ModelFleet fleet;
  std::string error;
  EXPECT_FALSE(fleet.AddModel(nullptr, infer::FleetModelOptions{}, &error));
  EXPECT_NE(error.find("null session"), std::string::npos);

  infer::FleetModelOptions options;
  options.model_id = "";
  EXPECT_FALSE(fleet.AddModel(NewSession(5), options, &error));
  EXPECT_NE(error.find("empty model_id"), std::string::npos);

  options.model_id = "a";
  options.max_batch_size = 0;
  EXPECT_FALSE(fleet.AddModel(NewSession(5), options, &error));
  EXPECT_NE(error.find("max_batch_size"), std::string::npos);

  options.max_batch_size = 4;
  options.queue_share = 1.5;
  EXPECT_FALSE(fleet.AddModel(NewSession(5), options, &error));
  EXPECT_NE(error.find("queue_share"), std::string::npos);

  options.queue_share = 0.0;
  ASSERT_TRUE(fleet.AddModel(NewSession(5), options, &error)) << error;
  EXPECT_FALSE(fleet.AddModel(NewSession(7), options, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);

  EXPECT_EQ(fleet.size(), 1u);
  EXPECT_EQ(fleet.model_ids(), std::vector<std::string>{"a"});
  EXPECT_NE(fleet.session("a"), nullptr);
  EXPECT_EQ(fleet.session("nope"), nullptr);
  ASSERT_NE(fleet.model_options("a"), nullptr);
  EXPECT_EQ(fleet.model_options("a")->max_batch_size, 4);

  // Reloaders: unknown ids and double-attachment are refused.
  EXPECT_FALSE(fleet.AttachReloader(
      "nope", nullptr, [this] { return NewTinyModel(1); }, scaler_, Options(),
      infer::HotReloadOptions{}, &error));
}

TEST_F(FleetServerTest, RoutesEachModelToItsOwnWeightsBitwise) {
  infer::ModelFleet fleet;
  AddModel(&fleet, "city-a", /*seed=*/5, /*priority=*/0, /*weight=*/4.0);
  AddModel(&fleet, "city-b", /*seed=*/11, /*priority=*/2, /*weight=*/1.0);
  infer::FleetServer server(&fleet, infer::FleetOptions{});

  const std::vector<float> ref_a = Reference(5, 3);
  const std::vector<float> ref_b = Reference(11, 3);
  ASSERT_NE(ref_a, ref_b);

  infer::Forecast a = server.Submit("city-a", MakeRequest(3)).get();
  infer::Forecast b = server.Submit("city-b", MakeRequest(3)).get();
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.values, ref_a);  // bitwise: arbitration never changes math
  EXPECT_EQ(b.values, ref_b);

  // Unknown ids are typed rejections, counted fleet-wide.
  infer::Forecast unknown = server.Submit("city-z", MakeRequest(3)).get();
  EXPECT_FALSE(unknown.ok);
  EXPECT_EQ(unknown.reason, infer::RejectReason::kBadRequest);
  const infer::FleetStats stats = server.stats();
  EXPECT_EQ(stats.rejected_unknown_model, 1);
  EXPECT_EQ(stats.models.at("city-a").completed, 1);
  EXPECT_EQ(stats.models.at("city-b").completed, 1);

  server.Shutdown();
  infer::Forecast late = server.Submit("city-a", MakeRequest(3)).get();
  EXPECT_FALSE(late.ok);
  EXPECT_EQ(late.reason, infer::RejectReason::kShuttingDown);
}

TEST_F(FleetServerTest, QuotaRejectsOverSubscribedTenantTyped) {
  infer::ModelFleet fleet;
  // Long coalescing windows and roomy batches keep every submission queued
  // (no full-batch flush) while we probe the quota path.
  AddModel(&fleet, "gold", 5, 0, 4.0, /*max_wait_us=*/200000,
           /*max_batch_size=*/8);
  AddModel(&fleet, "bronze", 11, 2, 1.0, /*max_wait_us=*/200000,
           /*max_batch_size=*/8);
  infer::FleetOptions options;
  options.max_queue_depth = 8;  // quotas arm at 4; bronze's share is 1
  infer::FleetServer server(&fleet, options);

  // Fill the shared queue past the arbitration watermark with gold traffic
  // (gold's quota is 8*4/5 = 6, so these are all admitted).
  std::vector<std::future<infer::Forecast>> pending;
  for (int i = 0; i < 4; ++i) {
    pending.push_back(server.Submit("gold", MakeRequest(i)));
  }

  // Bronze may use its own share (one slot)...
  pending.push_back(server.Submit("bronze", MakeRequest(0)));
  // ...but the next bronze request is over quota: a typed, retryable
  // rejection with a backoff hint, not a starved gold tenant.
  infer::Forecast over = server.Submit("bronze", MakeRequest(1)).get();
  EXPECT_FALSE(over.ok);
  EXPECT_EQ(over.reason, infer::RejectReason::kQuotaExceeded);
  EXPECT_TRUE(infer::IsRetryableReject(over.reason));
  EXPECT_GT(over.retry_after_us, 0);

  server.Shutdown(/*drain=*/true);  // everything queued still completes
  for (std::future<infer::Forecast>& f : pending) {
    const infer::Forecast forecast = f.get();
    EXPECT_TRUE(forecast.ok) << forecast.error;
  }
  const infer::FleetStats stats = server.stats();
  EXPECT_EQ(stats.models.at("bronze").rejected_quota, 1);
  EXPECT_EQ(stats.models.at("gold").rejected_quota, 0);
  EXPECT_EQ(stats.completed, 5);
}

TEST_F(FleetServerTest, SheddingTierRefusesOnlyWorstSloClass) {
  infer::ModelFleet fleet;
  AddModel(&fleet, "gold", 5, 0, 4.0);
  AddModel(&fleet, "bronze", 11, 2, 1.0);
  infer::FleetOptions options;
  options.max_queue_depth = 64;
  options.degrade.recover_ticks = 1000;  // pin the forced tier for the test
  infer::FleetServer server(&fleet, options);

  // Force the harshest tier through the scripted chaos seam.
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;
  fault::ArmFaultPoint("server.degrade", script);

  // The first submission consumes the fault (tier -> kShedding) but is
  // gold, the best class: admitted. Bronze — the single worst class — is
  // refused while gold keeps serving.
  infer::Forecast gold = server.Submit("gold", MakeRequest(0)).get();
  ASSERT_TRUE(gold.ok) << gold.error;
  infer::Forecast bronze = server.Submit("bronze", MakeRequest(0)).get();
  EXPECT_FALSE(bronze.ok);
  EXPECT_EQ(bronze.reason, infer::RejectReason::kShedLowPriority);
  infer::Forecast gold2 = server.Submit("gold", MakeRequest(1)).get();
  EXPECT_TRUE(gold2.ok) << gold2.error;

  const infer::FleetStats stats = server.stats();
  EXPECT_EQ(stats.tier, infer::OverloadTier::kShedding);
  EXPECT_EQ(stats.models.at("bronze").rejected_low_priority, 1);
  EXPECT_EQ(stats.models.at("gold").rejected, 0);
}

TEST_F(FleetServerTest, TwoModelsHotReloadConcurrentlyUnderTraffic) {
  infer::ModelFleet fleet;
  AddModel(&fleet, "a", 5, 0, 4.0);
  AddModel(&fleet, "b", 7, 1, 2.0);
  AddModel(&fleet, "c", 9, 2, 1.0);  // no reloader: must never swap
  infer::FleetServer server(&fleet, infer::FleetOptions{});

  const std::string dir_a = watch_dir_ + "/a";
  const std::string dir_b = watch_dir_ + "/b";
  std::filesystem::create_directories(dir_a);
  std::filesystem::create_directories(dir_b);
  infer::HotReloadOptions reload_a;
  reload_a.directory = dir_a;
  reload_a.poll_interval_ms = 10;
  infer::HotReloadOptions reload_b = reload_a;
  reload_b.directory = dir_b;
  std::string error;
  ASSERT_TRUE(fleet.AttachReloader("a", server.host("a"),
                                   [this] { return NewTinyModel(99); },
                                   scaler_, Options(), reload_a, &error))
      << error;
  ASSERT_TRUE(fleet.AttachReloader("b", server.host("b"),
                                   [this] { return NewTinyModel(99); },
                                   scaler_, Options(), reload_b, &error))
      << error;
  fleet.StartReloaders();

  // Traffic hammers all three lanes while both checkpoints stage and swap.
  std::atomic<bool> stop{false};
  std::vector<std::thread> traffic;
  for (const std::string id : {"a", "b", "c"}) {
    traffic.emplace_back([&, id] {
      int64_t start = 0;
      while (!stop.load()) {
        infer::Forecast f =
            server.Submit(id, MakeRequest(start++ % 16)).get();
        ASSERT_TRUE(f.ok) << id << ": " << f.error;
      }
    });
  }

  ASSERT_TRUE(train::SaveCheckpoint(
      *NewTinyModel(21), train::CheckpointPathForStep(dir_a, 1)));
  ASSERT_TRUE(train::SaveCheckpoint(
      *NewTinyModel(22), train::CheckpointPathForStep(dir_b, 1)));

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(60);
  while ((fleet.reloader("a")->stats().swaps == 0 ||
          fleet.reloader("b")->stats().swaps == 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (std::thread& t : traffic) t.join();
  fleet.StopReloaders();
  ASSERT_EQ(fleet.reloader("a")->stats().swaps, 1);
  ASSERT_EQ(fleet.reloader("b")->stats().swaps, 1);

  // Post-swap, each lane serves its own staged weights bitwise; the lane
  // without a reloader still serves its boot weights.
  infer::Forecast a = server.Submit("a", MakeRequest(3)).get();
  infer::Forecast b = server.Submit("b", MakeRequest(3)).get();
  infer::Forecast c = server.Submit("c", MakeRequest(3)).get();
  ASSERT_TRUE(a.ok && b.ok && c.ok);
  EXPECT_EQ(a.values, Reference(21, 3));
  EXPECT_EQ(b.values, Reference(22, 3));
  EXPECT_EQ(c.values, Reference(9, 3));

  const infer::FleetStats stats = server.stats();
  EXPECT_EQ(stats.models.at("a").session_swaps, 1);
  EXPECT_EQ(stats.models.at("b").session_swaps, 1);
  EXPECT_EQ(stats.models.at("c").session_swaps, 0);
  EXPECT_EQ(stats.session_swaps, 2);
}

TEST_F(FleetServerTest, StatsStayConsistentUnderRacingSubmitters) {
  infer::ModelFleet fleet;
  AddModel(&fleet, "a", 5, 0, 4.0);
  AddModel(&fleet, "b", 11, 2, 1.0);
  infer::FleetServer server(&fleet, infer::FleetOptions{});

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> submitters;
  std::atomic<int64_t> completed{0};
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string id = (t + i) % 2 == 0 ? "a" : "b";
        infer::Forecast f = server.Submit(id, MakeRequest(i % 16)).get();
        ASSERT_TRUE(f.ok) << f.error;
        completed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  server.Shutdown(/*drain=*/true);

  const infer::FleetStats stats = server.stats();
  EXPECT_EQ(completed.load(), kThreads * kPerThread);
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.completed, kThreads * kPerThread);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.cancelled, 0);
  int64_t batches = 0;
  for (const auto& [id, model] : stats.models) {
    // Every accepted request is accounted exactly once.
    EXPECT_EQ(model.submitted, model.completed + model.rejected +
                                   model.cancelled + model.expired_deadlines)
        << id;
    // Every batch flush has exactly one recorded cause.
    EXPECT_EQ(model.batches, model.full_flushes + model.timeout_flushes +
                                 model.shutdown_flushes)
        << id;
    EXPECT_EQ(model.queue_depth, 0) << id;
    batches += model.batches;
  }
  EXPECT_EQ(stats.batches, batches);
  EXPECT_EQ(stats.models.at("a").submitted + stats.models.at("b").submitted,
            kThreads * kPerThread);
}

TEST_F(FleetServerTest, SubmitWithRetryRidesOutQuotaRejection) {
  infer::ModelFleet fleet;
  AddModel(&fleet, "gold", 5, 0, 4.0, /*max_wait_us=*/20000,
           /*max_batch_size=*/8);
  AddModel(&fleet, "bronze", 11, 2, 1.0, /*max_wait_us=*/20000,
           /*max_batch_size=*/8);
  infer::FleetOptions options;
  options.max_queue_depth = 8;
  infer::FleetServer server(&fleet, options);

  // Hold the queue over the watermark, over-subscribe bronze, then let the
  // retry loop win once the window flushes and the queue drains.
  std::vector<std::future<infer::Forecast>> pending;
  for (int i = 0; i < 4; ++i) {
    pending.push_back(server.Submit("gold", MakeRequest(i)));
  }
  pending.push_back(server.Submit("bronze", MakeRequest(0)));

  infer::RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff_us = 2000;
  policy.jitter_seed = 7;
  const infer::RetryResult result =
      infer::SubmitWithRetry(&server, "bronze", MakeRequest(1), policy);
  EXPECT_TRUE(result.forecast.ok) << result.forecast.error;
  EXPECT_EQ(result.forecast.values, Reference(11, 1));
  for (std::future<infer::Forecast>& f : pending) {
    EXPECT_TRUE(f.get().ok);
  }
  server.Shutdown();
}

}  // namespace
}  // namespace d2stgnn
