// Tests of the capture/plan/replay subsystem (DESIGN.md §10): the static
// memory planner's interval allocation, eager-vs-replay bitwise parity over
// an op zoo covering every recorded kernel, plan hygiene (dead-step pruning,
// registered step names, level schedule invariants), staleness and binding
// semantics, zero allocator traffic during replay, and session-level plan
// serving on the paper's model — parity at 1 and 4 threads in both serial
// and level-parallel modes, shape-miss fallback, padded replays, and plan
// invalidation when parameter storage is reassigned.

#include "exec/graph_capture.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "metrics/metrics.h"
#include "core/d2stgnn.h"
#include "data/sliding_window.h"
#include "data/synthetic_traffic.h"
#include "exec/memory_planner.h"
#include "exec/plan_executor.h"
#include "exec/plan_verifier.h"
#include "infer/session.h"
#include "tensor/buffer_arena.h"
#include "tensor/op_registry.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

#ifndef D2STGNN_SOURCE_DIR
#error "tests/CMakeLists.txt must define D2STGNN_SOURCE_DIR"
#endif

// The latency-floor test only runs on un-sanitized optimized builds —
// sanitizers and -O0 distort the eager/replay cost ratio arbitrarily.
// Any -DD2STGNN_SANITIZE=... build defines D2STGNN_SANITIZED_BUILD via
// tests/CMakeLists.txt (UBSan has no portable feature macro, so compiler
// detection alone cannot cover it); the compiler checks below are a
// belt-and-braces fallback for builds that pass -fsanitize= directly.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define D2STGNN_SANITIZED_BUILD 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define D2STGNN_SANITIZED_BUILD 1
#endif

namespace d2stgnn {
namespace {

// ---------------------------------------------------------------------------
// Memory planner.

TEST(MemoryPlannerTest, DisjointLifetimesShareBytes) {
  const std::vector<exec::BufferRequest> requests = {
      {64, 1, 1},  // dead after level 1
      {64, 2, 2},  // born at level 2: may reuse the first buffer's bytes
  };
  const exec::BufferAssignment assignment = exec::PlanBuffers(requests);
  ASSERT_EQ(assignment.offsets.size(), 2u);
  EXPECT_EQ(assignment.offsets[0], assignment.offsets[1]);
  EXPECT_EQ(assignment.slab_floats, 64);
}

TEST(MemoryPlannerTest, OverlappingLifetimesGetDistinctBytes) {
  const std::vector<exec::BufferRequest> requests = {
      {64, 1, 2},
      {64, 2, 3},  // both live at level 2
  };
  const exec::BufferAssignment assignment = exec::PlanBuffers(requests);
  EXPECT_NE(assignment.offsets[0], assignment.offsets[1]);
  EXPECT_GE(assignment.slab_floats, 128);
}

// Same-level buffers may be written concurrently under the level-parallel
// schedule, so they must never alias even though neither is read later.
TEST(MemoryPlannerTest, SameLevelBuffersNeverAlias) {
  const std::vector<exec::BufferRequest> requests = {
      {32, 3, 3},
      {32, 3, 3},
      {32, 3, 3},
  };
  const exec::BufferAssignment assignment = exec::PlanBuffers(requests);
  std::set<int64_t> offsets(assignment.offsets.begin(),
                            assignment.offsets.end());
  EXPECT_EQ(offsets.size(), 3u);
}

TEST(MemoryPlannerTest, OffsetsRespectAlignment) {
  // Odd sizes: every assigned offset must still land on the alignment grid.
  const std::vector<exec::BufferRequest> requests = {
      {5, 1, 2}, {7, 1, 3}, {3, 2, 3}, {13, 3, 4}, {1, 4, 4},
  };
  const exec::BufferAssignment assignment = exec::PlanBuffers(requests, 16);
  for (const int64_t offset : assignment.offsets) {
    EXPECT_EQ(offset % 16, 0) << "offset " << offset;
  }
}

// A chain (each value dies as soon as the next is produced) needs only ~2
// live buffers at a time, so the slab must come out far below the sum.
TEST(MemoryPlannerTest, ChainReusesInsteadOfSummingSizes) {
  std::vector<exec::BufferRequest> requests;
  int64_t total = 0;
  for (int32_t i = 1; i <= 10; ++i) {
    requests.push_back({256, i, i + 1});
    total += 256;
  }
  const exec::BufferAssignment assignment = exec::PlanBuffers(requests);
  EXPECT_LT(assignment.slab_floats, total / 2);
  EXPECT_GE(assignment.slab_floats, 512);  // two live links minimum
}

TEST(MemoryPlannerTest, AssignmentIsDeterministic) {
  const std::vector<exec::BufferRequest> requests = {
      {100, 1, 3}, {40, 1, 2}, {60, 2, 4}, {100, 3, 5}, {8, 4, 5},
  };
  const exec::BufferAssignment a = exec::PlanBuffers(requests);
  const exec::BufferAssignment b = exec::PlanBuffers(requests);
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.slab_floats, b.slab_floats);
}

// ---------------------------------------------------------------------------
// Capture + replay on an op zoo.

// Exercises every kernel the capture guard records: MatMul, broadcast and
// same-shape binary ops, unary ops, EmbeddingLookup, Softmax, dim and full
// reductions, Max, BroadcastTo, Concat, Slice, Permute, Reshape.
Tensor Zoo(const Tensor& x, const Tensor& w, const Tensor& bias,
           const Tensor& table, const std::vector<int64_t>& idx) {
  Tensor h = Relu(Add(MatMul(x, w), bias));        // [2,3,5]
  Tensor e = EmbeddingLookup(table, idx, {2, 3});  // [2,3,5]
  Tensor m = Mul(h, e);
  Tensor d = Div(Sub(h, e), AddScalar(Abs(e), 1.0f));
  Tensor s = Softmax(Add(m, d), -1);
  Tensor r = Sum(s, 1, /*keepdim=*/true);          // [2,1,5]
  Tensor b = BroadcastTo(r, {2, 3, 5});
  Tensor c = Concat({m, b}, 2);                    // [2,3,10]
  Tensor sl = Slice(c, 2, 2, 7);                   // [2,3,5]
  Tensor p = Permute(sl, {1, 0, 2});               // [3,2,5]
  Tensor mx = Max(p, 0, /*keepdim=*/false);        // [2,5]
  Tensor total = Sum(mx);                          // scalar
  Tensor scaled = MulScalar(mx, 1.25f);
  return Add(scaled, BroadcastTo(Reshape(total, {1, 1}), {2, 5}));
}

class ZooCaptureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    w_ = Tensor::Randn({4, 5}, rng);
    bias_ = Tensor::Randn({5}, rng);
    table_ = Tensor::Randn({7, 5}, rng);
    x_ = Tensor::Randn({2, 3, 4}, rng);
    idx_ = {0, 3, 6, 2, 5, 1};
  }

  // Captures the zoo with x and idx bound as per-request inputs.
  std::shared_ptr<const exec::ExecutionPlan> CapturePlan() {
    NoGradGuard no_grad;
    exec::GraphCapture capture;
    capture.BindInput("x", x_);
    capture.BindIndexInput("idx", idx_);
    Tensor out = Zoo(x_, w_, bias_, table_, idx_);
    auto plan = capture.Finish(out);
    EXPECT_NE(plan, nullptr) << capture.error();
    return plan;
  }

  std::vector<float> EagerZoo(const Tensor& x,
                              const std::vector<int64_t>& idx) const {
    NoGradGuard no_grad;
    return Zoo(x, w_, bias_, table_, idx).Data();
  }

  Tensor w_, bias_, table_, x_;
  std::vector<int64_t> idx_;
};

TEST_F(ZooCaptureTest, ReplayMatchesEagerBitwiseOnFreshInputs) {
  auto plan = CapturePlan();
  ASSERT_NE(plan, nullptr);
  exec::PlanExecutor executor(plan);

  Rng rng(23);
  for (int trial = 0; trial < 3; ++trial) {
    const Tensor x2 = Tensor::Randn({2, 3, 4}, rng);
    const std::vector<int64_t> idx2 = {6, 1, 4, 0, 2, 3};
    const std::vector<float> reference = EagerZoo(x2, idx2);

    for (const exec::ReplayMode mode :
         {exec::ReplayMode::kSerial, exec::ReplayMode::kLevelParallel}) {
      std::string error;
      const exec::ReplayStatus status = executor.Run(
          {{x2.Data().data(), x2.numel()}}, {&idx2}, mode, &error);
      ASSERT_EQ(status, exec::ReplayStatus::kOk) << error;
      for (size_t i = 0; i < reference.size(); ++i) {
        ASSERT_EQ(executor.output()[i], reference[i])
            << "trial " << trial << " element " << i;
      }
    }
  }
}

// Without BindIndexInput the capture bakes a snapshot of the index vector;
// replay keeps using it even after the original vector mutates.
TEST_F(ZooCaptureTest, UnboundIndicesAreBakedAtCaptureTime) {
  std::vector<int64_t> idx = idx_;
  std::shared_ptr<const exec::ExecutionPlan> plan;
  {
    NoGradGuard no_grad;
    exec::GraphCapture capture;
    capture.BindInput("x", x_);
    Tensor out = Zoo(x_, w_, bias_, table_, idx);
    plan = capture.Finish(out);
    ASSERT_NE(plan, nullptr) << capture.error();
  }
  EXPECT_TRUE(plan->index_inputs().empty());
  const std::vector<float> reference = EagerZoo(x_, idx_);

  idx.assign(idx.size(), 0);  // must not affect the baked snapshot
  exec::PlanExecutor executor(plan);
  const exec::ReplayStatus status = executor.Run(
      {{x_.Data().data(), x_.numel()}}, {}, exec::ReplayMode::kSerial);
  ASSERT_EQ(status, exec::ReplayStatus::kOk);
  for (size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(executor.output()[i], reference[i]) << "element " << i;
  }
}

// Constants are read through the captured tensor handle, so in-place
// parameter updates (optimizer steps, checkpoint loads into existing
// buffers) are picked up by the very next replay.
TEST_F(ZooCaptureTest, InPlaceConstantMutationIsVisibleToReplay) {
  auto plan = CapturePlan();
  ASSERT_NE(plan, nullptr);
  exec::PlanExecutor executor(plan);

  w_.Data()[3] += 0.75f;
  bias_.Data()[0] -= 0.5f;
  ASSERT_TRUE(plan->ConstantsValid());

  const std::vector<float> reference = EagerZoo(x_, idx_);
  const exec::ReplayStatus status = executor.Run(
      {{x_.Data().data(), x_.numel()}}, {&idx_}, exec::ReplayMode::kSerial);
  ASSERT_EQ(status, exec::ReplayStatus::kOk);
  for (size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(executor.output()[i], reference[i]) << "element " << i;
  }
}

// Reassigned constant storage (vector reallocation) makes the plan stale:
// Run refuses with kStaleConstants instead of reading freed memory.
TEST_F(ZooCaptureTest, ReallocatedConstantStorageIsDetectedAsStale) {
  auto plan = CapturePlan();
  ASSERT_NE(plan, nullptr);
  exec::PlanExecutor executor(plan);

  w_.Data().reserve(w_.Data().capacity() * 4 + 64);  // forces reallocation
  EXPECT_FALSE(plan->ConstantsValid());

  std::string error;
  const exec::ReplayStatus status =
      executor.Run({{x_.Data().data(), x_.numel()}}, {&idx_},
                   exec::ReplayMode::kSerial, &error);
  EXPECT_EQ(status, exec::ReplayStatus::kStaleConstants);
  EXPECT_FALSE(error.empty());
}

TEST_F(ZooCaptureTest, MismatchedBindingsAreRejectedWithoutRunning) {
  auto plan = CapturePlan();
  ASSERT_NE(plan, nullptr);
  exec::PlanExecutor executor(plan);

  // Wrong input size.
  std::string error;
  EXPECT_EQ(executor.Run({{x_.Data().data(), x_.numel() - 1}}, {&idx_},
                         exec::ReplayMode::kSerial, &error),
            exec::ReplayStatus::kBindingMismatch);
  EXPECT_FALSE(error.empty());

  // Wrong index count.
  const std::vector<int64_t> short_idx = {1, 2};
  EXPECT_EQ(executor.Run({{x_.Data().data(), x_.numel()}}, {&short_idx},
                         exec::ReplayMode::kSerial),
            exec::ReplayStatus::kBindingMismatch);

  // Wrong binding count.
  EXPECT_EQ(executor.Run({}, {&idx_}, exec::ReplayMode::kSerial),
            exec::ReplayStatus::kBindingMismatch);

  // A correct call afterwards still succeeds — rejection is stateless.
  EXPECT_EQ(executor.Run({{x_.Data().data(), x_.numel()}}, {&idx_},
                         exec::ReplayMode::kSerial),
            exec::ReplayStatus::kOk);
}

// Replay must be allocation-free by construction: running under a fresh
// arena guard records zero acquires of any kind.
TEST_F(ZooCaptureTest, ReplayPerformsZeroArenaTraffic) {
  auto plan = CapturePlan();
  ASSERT_NE(plan, nullptr);
  exec::PlanExecutor executor(plan);

  auto arena = std::make_shared<BufferArena>();
  {
    ArenaGuard guard(arena);
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(executor.Run({{x_.Data().data(), x_.numel()}}, {&idx_},
                             exec::ReplayMode::kLevelParallel),
                exec::ReplayStatus::kOk);
    }
  }
  const BufferArenaStats stats = arena->stats();
  EXPECT_EQ(stats.fresh_allocations, 0);
  EXPECT_EQ(stats.pool_hits, 0);
  EXPECT_EQ(stats.external_adopts, 0);
}

TEST_F(ZooCaptureTest, SlabReusesBytesAcrossSlotLifetimes) {
  auto plan = CapturePlan();
  ASSERT_NE(plan, nullptr);
  EXPECT_GT(plan->slab_floats(), 0);
  EXPECT_LT(plan->slab_floats(), plan->total_slot_floats())
      << "a 15-step chain with short-lived intermediates must share bytes";
}

TEST_F(ZooCaptureTest, LevelScheduleIsSortedContiguousAndDependencySafe) {
  auto plan = CapturePlan();
  ASSERT_NE(plan, nullptr);

  // Steps are sorted by level and the level ranges tile [0, steps).
  int32_t next_begin = 0;
  int32_t prev_level = 0;
  for (const auto& [begin, end] : plan->levels()) {
    ASSERT_EQ(begin, next_begin);
    ASSERT_LT(begin, end);
    const int32_t level = plan->steps()[static_cast<size_t>(begin)].level;
    ASSERT_GT(level, prev_level);
    for (int32_t s = begin; s < end; ++s) {
      ASSERT_EQ(plan->steps()[static_cast<size_t>(s)].level, level);
    }
    prev_level = level;
    next_begin = end;
  }
  ASSERT_EQ(static_cast<size_t>(next_begin), plan->steps().size());

  // Every slot input was produced at a strictly earlier level.
  for (const exec::PlanStep& step : plan->steps()) {
    for (const exec::ValueRef& input : step.inputs) {
      if (input.kind != exec::ValueRef::Kind::kSlot) continue;
      const exec::SlotInfo& slot =
          plan->slots()[static_cast<size_t>(input.index)];
      EXPECT_LT(slot.def_level, step.level);
      EXPECT_GE(slot.last_use_level, step.level);
    }
  }
}

// Every step name a capture emits must be an op declared in ops.h (the
// registry completeness test parses the same header), keeping the plan
// vocabulary in sync with the dispatch surface. "SumDim" aliases the dim
// overload of Sum, which shares its declaration name.
TEST_F(ZooCaptureTest, StepNamesComeFromTheOpsHeader) {
  const std::string path =
      std::string(D2STGNN_SOURCE_DIR) + "/src/tensor/ops.h";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  const std::vector<std::string> declared =
      ParseOpsHeaderOpNames(text.str());
  ASSERT_GT(declared.size(), 30u) << "ops.h parse looks broken";
  std::set<std::string> known(declared.begin(), declared.end());
  known.insert("SumDim");

  auto plan = CapturePlan();
  ASSERT_NE(plan, nullptr);
  ASSERT_GE(plan->steps().size(), 15u);
  for (const exec::PlanStep& step : plan->steps()) {
    EXPECT_TRUE(known.count(step.op))
        << "step name '" << step.op << "' is not declared in ops.h";
  }
}

// Every zoo-captured plan must prove race- and lifetime-sound under the
// static verifier (DESIGN.md §12) — the same analysis Warmup applies to
// session plans — with its Reshape surfacing as the copy-step advisory.
TEST_F(ZooCaptureTest, CapturedPlansPassStaticVerification) {
  auto plan = CapturePlan();
  ASSERT_NE(plan, nullptr);
  const exec::VerifierReport report = exec::VerifyPlan(*plan);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.HasCode(exec::DiagCode::kCopyStep)) << report.ToString();

  // The baked-indices variant verifies too (index_input = -1 everywhere).
  NoGradGuard no_grad;
  exec::GraphCapture capture;
  capture.BindInput("x", x_);
  Tensor out = Zoo(x_, w_, bias_, table_, idx_);
  auto baked = capture.Finish(out);
  ASSERT_NE(baked, nullptr) << capture.error();
  const exec::VerifierReport baked_report = exec::VerifyPlan(*baked);
  EXPECT_TRUE(baked_report.ok()) << baked_report.ToString();
}

TEST(GraphCaptureTest, StepsNotReachingTheOutputArePruned) {
  NoGradGuard no_grad;
  Rng rng(3);
  const Tensor x = Tensor::Randn({4, 4}, rng);

  exec::GraphCapture capture;
  capture.BindInput("x", x);
  Tensor kept = Relu(x);
  Tensor unused = Exp(Tanh(x));  // recorded, but dead
  (void)unused;
  auto plan = capture.Finish(kept);
  ASSERT_NE(plan, nullptr) << capture.error();

  ASSERT_EQ(plan->steps().size(), 1u);
  EXPECT_EQ(plan->steps()[0].op, "Relu");
}

TEST(GraphCaptureTest, UnsupportedOpPoisonsTheCapture) {
  NoGradGuard no_grad;
  Rng init(3);
  const Tensor x = Tensor::Randn({4, 4}, init);

  exec::GraphCapture capture;
  capture.BindInput("x", x);
  Rng dropout_rng(9);
  Tensor out = Relu(Dropout(x, 0.5f, /*training=*/true, dropout_rng));
  auto plan = capture.Finish(out);
  EXPECT_EQ(plan, nullptr);
  EXPECT_NE(capture.error().find("Dropout"), std::string::npos)
      << capture.error();
}

TEST(GraphCaptureTest, InferenceModeDropoutIsCapturable) {
  NoGradGuard no_grad;
  Rng init(3);
  const Tensor x = Tensor::Randn({4, 4}, init);

  exec::GraphCapture capture;
  capture.BindInput("x", x);
  Rng dropout_rng(9);
  // Identity in eval mode: the graph reduces to Relu(x).
  Tensor out = Relu(Dropout(x, 0.5f, /*training=*/false, dropout_rng));
  auto plan = capture.Finish(out);
  ASSERT_NE(plan, nullptr) << capture.error();
}

TEST(GraphCaptureTest, OutputNotProducedByARecordedOpFails) {
  NoGradGuard no_grad;
  Rng rng(3);
  const Tensor x = Tensor::Randn({4, 4}, rng);

  exec::GraphCapture capture;
  capture.BindInput("x", x);
  auto plan = capture.Finish(x);  // no op ever wrote x
  EXPECT_EQ(plan, nullptr);
  EXPECT_FALSE(capture.error().empty());
}

// ---------------------------------------------------------------------------
// Session-level plan serving on the paper's model.

constexpr int64_t kNodes = 6;
constexpr int64_t kInputLen = 12;

class ExecSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    original_threads_ = GetNumThreads();
    data::SyntheticTrafficOptions options;
    options.network.num_nodes = kNodes;
    options.num_steps = 600;
    options.seed = 31;
    traffic_ = data::GenerateSyntheticTraffic(options);
    scaler_.Fit(traffic_.dataset.values, 400, true);
  }

  void TearDown() override { SetNumThreads(original_threads_); }

  infer::SessionOptions Options() const {
    infer::SessionOptions options;
    options.num_nodes = kNodes;
    options.input_len = kInputLen;
    options.steps_per_day = traffic_.dataset.steps_per_day;
    return options;
  }

  infer::ForecastRequest MakeRequest(int64_t start) const {
    infer::ForecastRequest request;
    const std::vector<float>& values = traffic_.dataset.values.Data();
    request.window.assign(values.data() + start * kNodes,
                          values.data() + (start + kInputLen) * kNodes);
    request.time_of_day = traffic_.dataset.TimeOfDay(start);
    request.day_of_week = traffic_.dataset.DayOfWeek(start);
    return request;
  }

  // The paper's model with deterministic init: two calls with the same seed
  // build bitwise-identical parameter sets, so a plan-serving session can be
  // compared against an eager twin without a checkpoint round-trip.
  std::unique_ptr<core::D2Stgnn> NewModel(uint64_t seed) const {
    core::D2StgnnConfig config;
    config.num_nodes = kNodes;
    config.input_len = kInputLen;
    config.output_len = 3;
    config.hidden_dim = 8;
    config.embed_dim = 4;
    config.num_layers = 1;
    config.num_heads = 2;
    config.steps_per_day = traffic_.dataset.steps_per_day;
    Rng rng(seed);
    return std::make_unique<core::D2Stgnn>(
        config, traffic_.dataset.network.adjacency, rng);
  }

  std::vector<infer::ForecastRequest> Requests(int64_t count) const {
    std::vector<infer::ForecastRequest> requests;
    for (int64_t i = 0; i < count; ++i) requests.push_back(MakeRequest(i * 3));
    return requests;
  }

  static void ExpectForecastsEqual(const std::vector<infer::Forecast>& a,
                                   const std::vector<infer::Forecast>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_TRUE(a[i].ok) << a[i].error;
      ASSERT_TRUE(b[i].ok) << b[i].error;
      EXPECT_EQ(a[i].values, b[i].values) << "request " << i;
    }
  }

  data::SyntheticTraffic traffic_;
  data::StandardScaler scaler_;
  int original_threads_ = 0;
};

class ExecSessionParityTest : public ExecSessionTest,
                              public ::testing::WithParamInterface<int> {};

// The tentpole contract on the full D2STGNN forward (diffusion block,
// inherent block, estimation gate, dynamic graph — every core block):
// plan-served forecasts are bitwise identical to eager ones, at 1 and 4
// threads, in both serial and level-parallel replay modes.
TEST_P(ExecSessionParityTest, PlanReplayMatchesEagerBitwise) {
  SetNumThreads(GetParam());

  infer::SessionOptions eager_options = Options();
  eager_options.use_plans = false;
  auto eager = infer::InferenceSession::Wrap(NewModel(7), scaler_,
                                             eager_options);
  ASSERT_NE(eager, nullptr);
  const std::vector<infer::ForecastRequest> requests = Requests(4);
  const std::vector<infer::Forecast> reference =
      eager->PredictRequests(requests);
  EXPECT_EQ(eager->session_stats().plans_built, 0);

  for (const bool parallel : {false, true}) {
    infer::SessionOptions plan_options = Options();
    plan_options.plan_parallel = parallel;
    // Every plan this test replays must first be accepted by the static
    // verifier: the bitwise-parity assertions below are then exercised only
    // on verifier-accepted plans, at 1 and 4 threads.
    plan_options.verify_plans = true;
    auto planned = infer::InferenceSession::Wrap(NewModel(7), scaler_,
                                                 plan_options);
    ASSERT_NE(planned, nullptr);
    planned->Warmup(/*batch_size=*/4, /*runs=*/2);
    ASSERT_EQ(planned->planned_batch_sizes(), std::vector<int64_t>{4});

    const auto reports = planned->verifier_reports();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_TRUE(reports.at(4).ok()) << reports.at(4).ToString();

    const infer::SessionStats before = planned->session_stats();
    EXPECT_EQ(before.plans_built, 1);
    EXPECT_EQ(before.plans_verified, 1);
    EXPECT_EQ(before.plan_verifier_errors, 0);
    EXPECT_GT(before.plan_replays, 0) << "warmup runs must replay";

    const std::vector<infer::Forecast> served =
        planned->PredictRequests(requests);
    ExpectForecastsEqual(served, reference);

    const infer::SessionStats after = planned->session_stats();
    EXPECT_EQ(after.plan_replays, before.plan_replays + 1);
    EXPECT_EQ(after.eager_forwards, before.eager_forwards);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ExecSessionParityTest,
                         ::testing::Values(1, 4));

// A batch size larger than every captured plan cannot be padded into one;
// it must fall back to the eager path and still serve correct forecasts.
TEST_F(ExecSessionTest, OversizedBatchFallsBackToEager) {
  infer::SessionOptions eager_options = Options();
  eager_options.use_plans = false;
  auto eager = infer::InferenceSession::Wrap(NewModel(7), scaler_,
                                             eager_options);
  auto planned = infer::InferenceSession::Wrap(NewModel(7), scaler_,
                                               Options());
  ASSERT_NE(eager, nullptr);
  ASSERT_NE(planned, nullptr);

  planned->Warmup(/*batch_size=*/2);
  const infer::SessionStats before = planned->session_stats();

  const std::vector<infer::ForecastRequest> requests = Requests(5);
  ExpectForecastsEqual(planned->PredictRequests(requests),
                       eager->PredictRequests(requests));

  const infer::SessionStats after = planned->session_stats();
  EXPECT_EQ(after.plan_replays, before.plan_replays);
  EXPECT_EQ(after.eager_forwards, before.eager_forwards + 1);
}

// A batch smaller than a captured plan is padded with blank requests up to
// the plan size and replayed; the padding rows never leak into results.
TEST_F(ExecSessionTest, UndersizedBatchIsPaddedIntoThePlan) {
  infer::SessionOptions eager_options = Options();
  eager_options.use_plans = false;
  auto eager = infer::InferenceSession::Wrap(NewModel(7), scaler_,
                                             eager_options);
  auto planned = infer::InferenceSession::Wrap(NewModel(7), scaler_,
                                               Options());
  ASSERT_NE(eager, nullptr);
  ASSERT_NE(planned, nullptr);

  planned->Warmup(/*batch_size=*/4);
  const infer::SessionStats before = planned->session_stats();

  const std::vector<infer::ForecastRequest> requests = Requests(3);
  ExpectForecastsEqual(planned->PredictRequests(requests),
                       eager->PredictRequests(requests));

  const infer::SessionStats after = planned->session_stats();
  EXPECT_EQ(after.plan_replays, before.plan_replays + 1);
  EXPECT_EQ(after.padded_replays, before.padded_replays + 1);
  EXPECT_EQ(after.eager_forwards, before.eager_forwards);

  // With padding off the same undersized batch runs eager instead.
  infer::SessionOptions no_pad = Options();
  no_pad.pad_to_plan = false;
  auto strict = infer::InferenceSession::Wrap(NewModel(7), scaler_, no_pad);
  ASSERT_NE(strict, nullptr);
  strict->Warmup(/*batch_size=*/4);
  const int64_t eager_before = strict->session_stats().eager_forwards;
  ExpectForecastsEqual(strict->PredictRequests(requests),
                       eager->PredictRequests(requests));
  EXPECT_EQ(strict->session_stats().eager_forwards, eager_before + 1);
}

// In-place parameter mutation (what optimizers and checkpoint loads do)
// flows into replays; reassigned parameter storage invalidates the plan and
// the session transparently recovers on the eager path.
TEST_F(ExecSessionTest, ParameterMutationAndInvalidationSemantics) {
  auto model = NewModel(7);
  core::D2Stgnn* raw = model.get();
  infer::SessionOptions verify_options = Options();
  verify_options.verify_plans = true;  // so staleness must also drop reports
  auto planned = infer::InferenceSession::Wrap(std::move(model), scaler_,
                                               verify_options);
  ASSERT_NE(planned, nullptr);
  planned->Warmup(/*batch_size=*/1, /*runs=*/1);
  ASSERT_EQ(planned->verifier_reports().size(), 1u);

  infer::SessionOptions eager_options = Options();
  eager_options.use_plans = false;
  auto twin_model = NewModel(7);
  core::D2Stgnn* twin_raw = twin_model.get();
  auto eager = infer::InferenceSession::Wrap(std::move(twin_model), scaler_,
                                             eager_options);
  ASSERT_NE(eager, nullptr);

  // In-place mutation on both models: the next replay must already see it.
  raw->Parameters()[0].Data()[0] += 0.25f;
  twin_raw->Parameters()[0].Data()[0] += 0.25f;
  const infer::Forecast mutated = planned->PredictOne(MakeRequest(0));
  const infer::Forecast mutated_ref = eager->PredictOne(MakeRequest(0));
  ASSERT_TRUE(mutated.ok && mutated_ref.ok);
  EXPECT_EQ(mutated.values, mutated_ref.values);
  EXPECT_GT(planned->session_stats().plan_replays, 0);
  EXPECT_EQ(planned->session_stats().plan_invalidations, 0);

  // Storage reassignment: the stale plan is dropped, the request is served
  // eagerly, and the forecast is unchanged (reserve keeps the values).
  Tensor param = raw->Parameters()[0];
  param.Data().reserve(param.Data().capacity() * 4 + 64);
  const infer::Forecast after_realloc = planned->PredictOne(MakeRequest(0));
  ASSERT_TRUE(after_realloc.ok) << after_realloc.error;
  EXPECT_EQ(after_realloc.values, mutated_ref.values);
  EXPECT_GE(planned->session_stats().plan_invalidations, 1);
  EXPECT_TRUE(planned->planned_batch_sizes().empty());
  EXPECT_TRUE(planned->verifier_reports().empty())
      << "the staleness path must drop the verifier reports with the plans";

  // Warmup rebuilds the plan against the new storage and serving resumes.
  planned->Warmup(/*batch_size=*/1);
  const int64_t replays = planned->session_stats().plan_replays;
  const infer::Forecast rebuilt = planned->PredictOne(MakeRequest(0));
  ASSERT_TRUE(rebuilt.ok);
  EXPECT_EQ(rebuilt.values, mutated_ref.values);
  EXPECT_GT(planned->session_stats().plan_replays, replays);
}

// Warmup verification semantics: every fresh capture is verified exactly
// once, a warm cache hit does not re-verify (the report is cached with the
// plan), and a session with verification off keeps no reports.
TEST_F(ExecSessionTest, WarmupVerifiesFreshAndCacheHitPlansOnce) {
  infer::SessionOptions verify_options = Options();
  verify_options.verify_plans = true;
  auto planned = infer::InferenceSession::Wrap(NewModel(7), scaler_,
                                               verify_options);
  ASSERT_NE(planned, nullptr);

  planned->Warmup(/*batch_size=*/1);
  planned->Warmup(/*batch_size=*/2);
  infer::SessionStats stats = planned->session_stats();
  EXPECT_EQ(stats.plans_verified, 2);
  EXPECT_EQ(stats.plan_verifier_errors, 0);
  const auto reports = planned->verifier_reports();
  ASSERT_EQ(reports.size(), 2u);
  for (const auto& [batch_size, report] : reports) {
    EXPECT_TRUE(report.ok()) << "batch " << batch_size << ":\n"
                             << report.ToString();
  }

  // Cache hit: the plan and its report already exist, nothing re-runs.
  planned->Warmup(/*batch_size=*/1);
  EXPECT_EQ(planned->session_stats().plans_verified, 2);

  infer::SessionOptions off_options = Options();
  off_options.verify_plans = false;
  auto unverified = infer::InferenceSession::Wrap(NewModel(7), scaler_,
                                                  off_options);
  ASSERT_NE(unverified, nullptr);
  unverified->Warmup(/*batch_size=*/1);
  EXPECT_EQ(unverified->session_stats().plans_verified, 0);
  EXPECT_TRUE(unverified->verifier_reports().empty());
}

// The perf acceptance floor: plan-replayed single requests are at least
// 1.3x faster than eager ones on 4 threads (BENCH_plan.json reports the
// same ratio from the standalone bench; full runs gate on it too). Medians
// over enough iterations keep this stable on loaded machines — the
// observed ratio is ~3-4x, so 1.3x leaves a wide margin.
TEST_F(ExecSessionTest, PlanReplayBeatsEagerByThirtyPercent) {
#if defined(D2STGNN_SANITIZED_BUILD) || !defined(NDEBUG)
  GTEST_SKIP() << "latency floor asserted only on un-sanitized Release";
#else
  SetNumThreads(4);
  infer::SessionOptions eager_options = Options();
  eager_options.use_plans = false;
  auto eager = infer::InferenceSession::Wrap(NewModel(7), scaler_,
                                             eager_options);
  auto planned = infer::InferenceSession::Wrap(NewModel(7), scaler_,
                                               Options());
  ASSERT_NE(eager, nullptr);
  ASSERT_NE(planned, nullptr);
  planned->Warmup(/*batch_size=*/1, /*runs=*/3);

  const auto median_ms = [&](infer::InferenceSession& session) {
    using clock = std::chrono::steady_clock;
    const infer::ForecastRequest request = MakeRequest(0);
    for (int i = 0; i < 5; ++i) EXPECT_TRUE(session.PredictOne(request).ok);
    std::vector<double> latencies;
    for (int i = 0; i < 80; ++i) {
      const auto start = clock::now();
      const infer::Forecast f = session.PredictOne(request);
      EXPECT_TRUE(f.ok) << f.error;
      latencies.push_back(
          std::chrono::duration<double, std::milli>(clock::now() - start)
              .count());
    }
    return metrics::SummarizeLatencies(latencies).p50;
  };

  const double eager_p50 = median_ms(*eager);
  const double plan_p50 = median_ms(*planned);
  ASSERT_GT(planned->session_stats().plan_replays, 0);
  EXPECT_GE(eager_p50 / plan_p50, 1.3)
      << "plan p50 " << plan_p50 << " ms vs eager p50 " << eager_p50
      << " ms";
#endif
}

TEST_F(ExecSessionTest, InvalidatePlansDropsEveryPlan) {
  infer::SessionOptions verify_options = Options();
  verify_options.verify_plans = true;
  auto planned = infer::InferenceSession::Wrap(NewModel(7), scaler_,
                                               verify_options);
  ASSERT_NE(planned, nullptr);
  planned->Warmup(1);
  planned->Warmup(4);
  ASSERT_EQ(planned->planned_batch_sizes().size(), 2u);
  ASSERT_EQ(planned->verifier_reports().size(), 2u);

  planned->InvalidatePlans();
  EXPECT_TRUE(planned->planned_batch_sizes().empty());
  EXPECT_TRUE(planned->verifier_reports().empty());
  EXPECT_GE(planned->session_stats().plan_invalidations, 2);

  const int64_t eager_before = planned->session_stats().eager_forwards;
  EXPECT_TRUE(planned->PredictOne(MakeRequest(0)).ok);
  EXPECT_EQ(planned->session_stats().eager_forwards, eager_before + 1);
}

}  // namespace
}  // namespace d2stgnn
