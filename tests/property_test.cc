// Parameterized property tests: invariants swept over shapes and model
// configurations.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/d2stgnn.h"
#include "data/presets.h"
#include "data/synthetic_traffic.h"
#include "graph/localized_transition.h"
#include "graph/transition.h"
#include "metrics/metrics.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace d2stgnn {
namespace {

// ---------------------------------------------------------------------------
// Broadcasting: for any compatible shape pair, gradients of elementwise ops
// must match finite differences and reduce to the input shapes.

using ShapePair = std::tuple<Shape, Shape>;

class BroadcastProperty : public ::testing::TestWithParam<ShapePair> {};

TEST_P(BroadcastProperty, AddMulDivGradChecks) {
  const auto& [shape_a, shape_b] = GetParam();
  Rng rng(7);
  Tensor a = Tensor::Rand(shape_a, rng, 0.5f, 2.0f).SetRequiresGrad(true);
  Tensor b = Tensor::Rand(shape_b, rng, 0.5f, 2.0f).SetRequiresGrad(true);

  auto check = [&](auto op, const char* name) {
    a.ZeroGrad();
    b.ZeroGrad();
    auto loss = [&] { return Sum(op(a, b)); };
    const auto result = CheckGradients(loss, {a, b}, rng, 1e-3f);
    EXPECT_TRUE(result.ok) << name << " rel err " << result.max_relative_error;
  };
  check([](const Tensor& x, const Tensor& y) { return Add(x, y); }, "Add");
  check([](const Tensor& x, const Tensor& y) { return Mul(x, y); }, "Mul");
  check([](const Tensor& x, const Tensor& y) { return Div(x, y); }, "Div");
}

TEST_P(BroadcastProperty, ForwardMatchesScalarSemantics) {
  const auto& [shape_a, shape_b] = GetParam();
  Rng rng(8);
  Tensor a = Tensor::Rand(shape_a, rng, -2.0f, 2.0f);
  Tensor b = Tensor::Rand(shape_b, rng, -2.0f, 2.0f);
  Tensor sum = Add(a, b);
  const Shape out = BroadcastShapes(shape_a, shape_b);
  ASSERT_EQ(sum.shape(), out);
  // Spot-check via explicit BroadcastTo.
  Tensor ea = BroadcastTo(a, out);
  Tensor eb = BroadcastTo(b, out);
  for (int64_t i = 0; i < sum.numel(); ++i) {
    EXPECT_NEAR(sum.At(i), ea.At(i) + eb.At(i), 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastProperty,
    ::testing::Values(ShapePair{{3, 4}, {3, 4}}, ShapePair{{3, 4}, {4}},
                      ShapePair{{2, 1, 3}, {4, 1}}, ShapePair{{5}, {2, 5}},
                      ShapePair{{2, 3, 1, 2}, {3, 2, 2}},
                      ShapePair{{1}, {2, 2}}));

// ---------------------------------------------------------------------------
// MatMul: associativity with identity, shape algebra, and gradients across
// batching patterns.

using MatMulShapes = std::tuple<Shape, Shape>;

class MatMulProperty : public ::testing::TestWithParam<MatMulShapes> {};

TEST_P(MatMulProperty, IdentityAndGrad) {
  const auto& [shape_a, shape_b] = GetParam();
  Rng rng(9);
  Tensor a = Tensor::Randn(shape_a, rng).SetRequiresGrad(true);
  Tensor b = Tensor::Randn(shape_b, rng).SetRequiresGrad(true);
  Tensor c = MatMul(a, b);
  // Multiplying by the identity on the right leaves the result unchanged.
  const int64_t n = c.size(-1);
  Tensor c_eye = MatMul(c, Tensor::Eye(n));
  for (int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c.At(i), c_eye.At(i), 1e-4f);
  }
  auto loss = [&] { return Sum(Abs(MatMul(a, b))); };
  const auto result = CheckGradients(loss, {a, b}, rng, 1e-2f, 3e-2f, 8);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulProperty,
    ::testing::Values(MatMulShapes{{3, 4}, {4, 2}},
                      MatMulShapes{{2, 3, 4}, {4, 5}},
                      MatMulShapes{{2, 3, 4}, {2, 4, 5}},
                      MatMulShapes{{3, 4}, {2, 4, 5}},
                      MatMulShapes{{2, 1, 3, 4}, {5, 4, 2}}));

// ---------------------------------------------------------------------------
// Softmax along every axis: rows sum to 1, entries positive, gradient sums
// to zero along the softmax axis (softmax is shift-invariant).

class SoftmaxProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(SoftmaxProperty, SimplexAndShiftInvariance) {
  const int64_t dim = GetParam();
  Rng rng(10);
  Tensor a = Tensor::Randn({3, 4, 5}, rng);
  Tensor s = Softmax(a, dim);
  Tensor sums = Sum(s, dim, false);
  for (int64_t i = 0; i < sums.numel(); ++i) {
    EXPECT_NEAR(sums.At(i), 1.0f, 1e-5f);
  }
  for (float v : s.Data()) EXPECT_GT(v, 0.0f);
  // softmax(a + c) == softmax(a).
  Tensor shifted = Softmax(AddScalar(a, 5.0f), dim);
  for (int64_t i = 0; i < s.numel(); ++i) {
    EXPECT_NEAR(s.At(i), shifted.At(i), 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Axes, SoftmaxProperty, ::testing::Values(0, 1, 2, -1));

// ---------------------------------------------------------------------------
// Localized transitions (Eq. 4) for every (k_s, k_t) of Figure 7's sweep:
// diagonal blocks masked, non-negative, and shaped [N, k_t * N].

using KernelSizes = std::tuple<int64_t, int64_t>;

class LocalizedProperty : public ::testing::TestWithParam<KernelSizes> {};

TEST_P(LocalizedProperty, MaskAndShape) {
  const auto& [k_s, k_t] = GetParam();
  Rng rng(11);
  graph::SensorNetworkOptions options;
  options.num_nodes = 7;
  options.neighbors = 3;
  const auto net = graph::BuildRandomSensorNetwork(options, rng);
  const Tensor p = graph::ForwardTransition(net.adjacency);
  const auto powers = graph::TransitionPowers(p, k_s);
  ASSERT_EQ(static_cast<int64_t>(powers.size()), k_s);
  for (const Tensor& power : powers) {
    const Tensor local = graph::LocalizedTransition(power, k_t);
    ASSERT_EQ(local.shape(), (Shape{7, k_t * 7}));
    for (int64_t i = 0; i < 7; ++i) {
      for (int64_t block = 0; block < k_t; ++block) {
        EXPECT_FLOAT_EQ(local.At({i, block * 7 + i}), 0.0f);
      }
    }
    for (float v : local.Data()) EXPECT_GE(v, 0.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, LocalizedProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2, 3, 5)));

// ---------------------------------------------------------------------------
// D2STGNN across architecture hyper-parameters (the Figure 7 grid): forward
// shape, finite loss, gradient mass.

using ModelParams = std::tuple<int64_t, int64_t, int64_t>;  // k_s, k_t, L

class D2StgnnProperty : public ::testing::TestWithParam<ModelParams> {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticTrafficOptions options;
    options.network.num_nodes = 6;
    options.num_steps = 600;
    options.seed = 12;
    traffic_ = new data::SyntheticTraffic(
        data::GenerateSyntheticTraffic(options));
    scaler_ = new data::StandardScaler();
    scaler_->Fit(traffic_->dataset.values, 400, true);
    loader_ = new data::WindowDataLoader(
        &traffic_->dataset, scaler_,
        data::MakeChronologicalSplits(600, 12, 12, 0.7f, 0.1f).train, 12, 12,
        3);
  }
  static void TearDownTestSuite() {
    delete loader_;
    delete scaler_;
    delete traffic_;
    loader_ = nullptr;
    scaler_ = nullptr;
    traffic_ = nullptr;
  }
  static data::SyntheticTraffic* traffic_;
  static data::StandardScaler* scaler_;
  static data::WindowDataLoader* loader_;
};

data::SyntheticTraffic* D2StgnnProperty::traffic_ = nullptr;
data::StandardScaler* D2StgnnProperty::scaler_ = nullptr;
data::WindowDataLoader* D2StgnnProperty::loader_ = nullptr;

TEST_P(D2StgnnProperty, ForwardBackwardAcrossConfigs) {
  const auto& [k_s, k_t, layers] = GetParam();
  core::D2StgnnConfig config;
  config.num_nodes = 6;
  config.hidden_dim = 8;
  config.embed_dim = 4;
  config.num_heads = 2;
  config.k_s = k_s;
  config.k_t = k_t;
  config.num_layers = layers;
  Rng rng(13);
  core::D2Stgnn model(config, traffic_->dataset.network.adjacency, rng);
  const data::Batch batch = loader_->GetBatch(0);
  Tensor loss = metrics::MaskedMaeLoss(
      scaler_->InverseTransform(model.Forward(batch)), batch.y);
  ASSERT_TRUE(std::isfinite(loss.Item()));
  model.ZeroGrad();
  loss.Backward();
  double mass = 0.0;
  for (const Tensor& p : model.Parameters()) {
    for (float g : p.GradData()) mass += std::fabs(g);
  }
  EXPECT_GT(mass, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, D2StgnnProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 3),
                                            ::testing::Values(1, 2)));

// ---------------------------------------------------------------------------
// Synthetic presets: generated datasets respect their family's reading
// conventions at any scale.

class PresetProperty : public ::testing::TestWithParam<int> {};

TEST_P(PresetProperty, ReadingsMatchFamily) {
  const auto presets = data::AllPresets(0.02f);
  const auto& preset = presets[static_cast<size_t>(GetParam())];
  const auto traffic = data::GenerateSyntheticTraffic(preset.options);
  EXPECT_EQ(traffic.dataset.name, preset.name);
  EXPECT_GT(traffic.dataset.num_nodes(), 0);
  for (float v : traffic.dataset.values.Data()) {
    EXPECT_GE(v, 0.0f);
    if (preset.options.flow) {
      EXPECT_FLOAT_EQ(v, std::round(v));
    } else {
      EXPECT_LE(v, preset.options.free_flow_speed + 2.0f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFour, PresetProperty, ::testing::Range(0, 4));

}  // namespace
}  // namespace d2stgnn
