#include "baselines/registry.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/historical_average.h"
#include "baselines/linear_svr.h"
#include "baselines/var.h"
#include "data/synthetic_traffic.h"
#include "metrics/metrics.h"
#include "optim/adam.h"
#include "tensor/ops.h"
#include "train/evaluator.h"

namespace d2stgnn {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticTrafficOptions options;
    options.network.num_nodes = 8;
    options.network.neighbors = 3;
    options.num_steps = 1200;
    options.seed = 21;
    traffic_ = data::GenerateSyntheticTraffic(options);
    train_steps_ = 1200 * 7 / 10;
    scaler_.Fit(traffic_.dataset.values, train_steps_, true);
    splits_ = data::MakeChronologicalSplits(1200, 12, 12, 0.7f, 0.1f);
    loader_ = std::make_unique<data::WindowDataLoader>(
        &traffic_.dataset, &scaler_, splits_.train, 12, 12, 4);
  }

  data::SyntheticTraffic traffic_;
  int64_t train_steps_ = 0;
  data::StandardScaler scaler_;
  data::SplitWindows splits_;
  std::unique_ptr<data::WindowDataLoader> loader_;
};

TEST_F(BaselineTest, HistoricalAverageBeatsNothingButIsFinite) {
  baselines::HistoricalAverage ha;
  ha.Fit(traffic_.dataset, train_steps_);
  Tensor pred = ha.Predict(traffic_.dataset, splits_.test, 12, 12);
  EXPECT_EQ(pred.size(0), static_cast<int64_t>(splits_.test.size()));
  EXPECT_EQ(pred.shape()[1], 12);
  for (float v : pred.Data()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0f);
  }
}

TEST_F(BaselineTest, HistoricalAveragePredictsWeeklyPattern) {
  // HA should do much better than predicting the global mean because the
  // synthetic data has strong daily peaks.
  baselines::HistoricalAverage ha;
  ha.Fit(traffic_.dataset, train_steps_);
  Tensor pred = ha.Predict(traffic_.dataset, splits_.test, 12, 12);

  // Collect matching truths.
  const int64_t n = traffic_.dataset.num_nodes();
  std::vector<float> truth(pred.Data().size());
  for (size_t w = 0; w < splits_.test.size(); ++w) {
    for (int64_t h = 0; h < 12; ++h) {
      const int64_t t = splits_.test[w] + 12 + h;
      for (int64_t i = 0; i < n; ++i) {
        truth[(w * 12 + static_cast<size_t>(h)) * n + static_cast<size_t>(i)] =
            traffic_.dataset.values.At(t * n + i);
      }
    }
  }
  Tensor truth_t(pred.shape(), std::move(truth));
  auto m = metrics::ComputeMetrics(pred, truth_t);

  // Constant global-mean prediction.
  double mean = 0.0;
  for (float v : truth_t.Data()) mean += v;
  mean /= static_cast<double>(truth_t.numel());
  Tensor constant = Tensor::Full(pred.shape(), static_cast<float>(mean));
  auto m_const = metrics::ComputeMetrics(constant, truth_t);
  EXPECT_LT(m.mae, m_const.mae);
}

TEST(RidgeSolver, SolvesKnownSystem) {
  // X^T X = [[2, 0], [0, 2]], X^T Y = [[4], [6]] -> W = [[2], [3]]
  // (ridge=0).
  std::vector<float> xtx = {2, 0, 0, 2};
  std::vector<float> xty = {4, 6};
  auto w = baselines::SolveRidgeNormalEquations(xtx, xty, 2, 1, 0.0f);
  EXPECT_NEAR(w[0], 2.0f, 1e-5f);
  EXPECT_NEAR(w[1], 3.0f, 1e-5f);
}

TEST(RidgeSolver, RidgeShrinksSolution) {
  std::vector<float> xtx = {1, 0, 0, 1};
  std::vector<float> xty = {1, 1};
  auto w0 = baselines::SolveRidgeNormalEquations(xtx, xty, 2, 1, 0.0f);
  auto w1 = baselines::SolveRidgeNormalEquations(xtx, xty, 2, 1, 1.0f);
  EXPECT_GT(w0[0], w1[0]);
}

TEST_F(BaselineTest, VarFitsAndPredicts) {
  baselines::Var var(3);
  var.Fit(traffic_.dataset, train_steps_);
  Tensor pred = var.Predict(traffic_.dataset, splits_.test, 12, 12);
  EXPECT_EQ(pred.shape(),
            (Shape{static_cast<int64_t>(splits_.test.size()), 12, 8, 1}));
  for (float v : pred.Data()) EXPECT_TRUE(std::isfinite(v));
}

TEST_F(BaselineTest, VarShortHorizonBeatsHa) {
  // On smooth synthetic data, VAR's one-step-ahead forecasts should beat
  // the weekly average at horizon 1 (this mirrors the paper's Table 3
  // ordering HA << VAR at short horizons).
  baselines::Var var(3);
  var.Fit(traffic_.dataset, train_steps_);
  baselines::HistoricalAverage ha;
  ha.Fit(traffic_.dataset, train_steps_);
  Tensor pv = var.Predict(traffic_.dataset, splits_.test, 12, 12);
  Tensor ph = ha.Predict(traffic_.dataset, splits_.test, 12, 12);

  const int64_t n = traffic_.dataset.num_nodes();
  std::vector<float> truth(pv.Data().size());
  for (size_t w = 0; w < splits_.test.size(); ++w) {
    for (int64_t h = 0; h < 12; ++h) {
      const int64_t t = splits_.test[w] + 12 + h;
      for (int64_t i = 0; i < n; ++i) {
        truth[(w * 12 + static_cast<size_t>(h)) * n + static_cast<size_t>(i)] =
            traffic_.dataset.values.At(t * n + i);
      }
    }
  }
  Tensor truth_t(pv.shape(), std::move(truth));
  auto mv = train::EvaluatePredictionHorizons(pv, truth_t, {1});
  auto mh = train::EvaluatePredictionHorizons(ph, truth_t, {1});
  EXPECT_LT(mv[0].metrics.mae, mh[0].metrics.mae);
}

TEST_F(BaselineTest, LinearSvrFitsAndPredicts) {
  baselines::LinearSvr svr;
  svr.Fit(traffic_.dataset, train_steps_, 12, 12);
  Tensor pred = svr.Predict(traffic_.dataset, splits_.test, 12, 12);
  EXPECT_EQ(pred.size(1), 12);
  for (float v : pred.Data()) EXPECT_TRUE(std::isfinite(v));
}

TEST_F(BaselineTest, EveryDeepModelForwardShapeAndBackward) {
  baselines::ModelConfig config;
  config.num_nodes = 8;
  config.hidden_dim = 8;
  config.embed_dim = 4;
  const data::Batch batch = loader_->GetBatch(0);

  std::vector<std::string> names = baselines::DeepModelNames();
  names.push_back("DGCRN-static");
  names.push_back("D2STGNN-static");
  names.push_back("D2STGNN-coupled");
  for (const std::string& name : names) {
    Rng rng(33);
    auto model = baselines::MakeModel(
        name, config, traffic_.dataset.network.adjacency, rng);
    Tensor pred = model->Forward(batch);
    EXPECT_EQ(pred.shape(), (Shape{4, 12, 8, 1})) << name;
    Tensor loss = metrics::MaskedMaeLoss(
        scaler_.InverseTransform(pred), batch.y);
    ASSERT_TRUE(std::isfinite(loss.Item())) << name;
    model->ZeroGrad();
    loss.Backward();
    double grad_mass = 0.0;
    for (const Tensor& p : model->Parameters()) {
      for (float g : p.GradData()) grad_mass += std::fabs(g);
    }
    EXPECT_GT(grad_mass, 0.0) << name;
    EXPECT_GT(model->ParameterCount(), 0) << name;
  }
}

TEST_F(BaselineTest, DeepModelsLearnOnOneBatch) {
  // Every deep model should be able to overfit a single batch noticeably.
  baselines::ModelConfig config;
  config.num_nodes = 8;
  config.hidden_dim = 8;
  config.embed_dim = 4;
  const data::Batch batch = loader_->GetBatch(0);
  for (const std::string& name : baselines::DeepModelNames()) {
    Rng rng(55);
    auto model = baselines::MakeModel(
        name, config, traffic_.dataset.network.adjacency, rng);
    optim::Adam adam(model->Parameters(), 5e-3f);
    float first = 0.0f, last = 0.0f;
    for (int step = 0; step < 20; ++step) {
      Tensor pred = scaler_.InverseTransform(model->Forward(batch));
      Tensor loss = metrics::MaskedMaeLoss(pred, batch.y);
      if (step == 0) first = loss.Item();
      last = loss.Item();
      adam.ZeroGrad();
      loss.Backward();
      optim::ClipGradNorm(adam.params(), 5.0f);
      adam.Step();
    }
    EXPECT_LT(last, first) << name << " first=" << first << " last=" << last;
  }
}

}  // namespace
}  // namespace d2stgnn
