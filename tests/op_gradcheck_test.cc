// Op-coverage gradient checking: every differentiable op declared in
// tensor/ops.h must have a registry entry (the completeness test parses the
// header, so a new op without a case fails the suite), and every registered
// case must pass a finite-difference check at 1 and 4 threads. A negative
// test with a deliberately wrong backward guards the checker itself against
// passing vacuously.

#include "tensor/op_registry.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "tensor/autograd.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

#ifndef D2STGNN_SOURCE_DIR
#error "tests/CMakeLists.txt must define D2STGNN_SOURCE_DIR"
#endif

namespace d2stgnn {
namespace {

std::string ReadOpsHeader() {
  const std::string path = std::string(D2STGNN_SOURCE_DIR) +
                           "/src/tensor/ops.h";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(OpsHeaderParserTest, ExtractsDeclarationsOnly) {
  const std::string header =
      "Tensor Add(const Tensor& a, const Tensor& b);\n"
      "Tensor Sum(const Tensor& a);\n"
      "Tensor Sum(const Tensor& a, int64_t dim, bool keepdim);\n"
      "Tensor operator+(const Tensor& a, const Tensor& b);\n"
      "Shape BroadcastShapes(const Shape& a, const Shape& b);\n"
      "  Tensor indented_is_not_a_declaration(int x);\n"
      "Tensor EmbeddingLookup(const Tensor& weight,\n"
      "                       const std::vector<int64_t>& indices);\n"
      "[[nodiscard]] Tensor Clamp(const Tensor& x, float lo, float hi);\n"
      "Tensor\n"
      "Softmax(const Tensor& x, int64_t dim);\n"
      "TensorImpl not_a_tensor_declaration(int x);\n";
  const std::vector<std::string> names = ParseOpsHeaderOpNames(header);
  EXPECT_EQ(names, (std::vector<std::string>{"Add", "Clamp", "EmbeddingLookup",
                                             "Softmax", "Sum"}));
}

TEST(OpGradCheckRegistryTest, CoversEveryOpDeclaredInOpsHeader) {
  const std::vector<std::string> declared =
      ParseOpsHeaderOpNames(ReadOpsHeader());
  ASSERT_GT(declared.size(), 30u) << "ops.h parse looks broken";

  const OpGradCheckRegistry& registry = OpGradCheckRegistry::Instance();
  const std::vector<std::string>& allowlist =
      OpGradCheckRegistry::NonDifferentiableAllowlist();
  for (const std::string& op : declared) {
    const bool allowlisted =
        std::find(allowlist.begin(), allowlist.end(), op) != allowlist.end();
    EXPECT_TRUE(registry.Contains(op) || allowlisted)
        << "op '" << op << "' is declared in tensor/ops.h but has no "
        << "gradcheck entry in tensor/op_registry.cc (and is not on the "
        << "non-differentiable allowlist); register a sample-input factory "
        << "so its backward is verified";
  }

  // And no stale entries: everything registered must still exist in ops.h.
  const std::set<std::string> declared_set(declared.begin(), declared.end());
  for (const std::string& op : OpGradCheckRegistry::Instance().OpNames()) {
    EXPECT_TRUE(declared_set.count(op) > 0)
        << "registry entry '" << op << "' has no declaration in tensor/ops.h";
  }
}

class OpGradCheckThreadsTest : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { SetNumThreads(1); }
};

TEST_P(OpGradCheckThreadsTest, AllRegisteredOpsPassFiniteDifferenceCheck) {
  SetNumThreads(GetParam());
  const OpGradCheckRegistry& registry = OpGradCheckRegistry::Instance();
  for (const std::string& op : registry.OpNames()) {
    Rng rng(7);
    const OpGradCheckCase c = registry.MakeCase(op, rng);
    const GradCheckResult result = CheckGradients(c.loss, c.params, rng);
    EXPECT_TRUE(result.ok)
        << "op '" << op << "' failed gradcheck at " << GetParam()
        << " threads: max_rel_err=" << result.max_relative_error
        << " param=" << result.bad_param << " entry=" << result.bad_entry
        << " analytic=" << result.bad_analytic
        << " numeric=" << result.bad_numeric;
    EXPECT_GT(result.checked, 0) << "op '" << op << "' checked no entries";
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, OpGradCheckThreadsTest,
                         ::testing::Values(1, 4));

// An op that lies about its derivative: forward y = 2x, backward claims 3.
Tensor BadDouble(const Tensor& a) {
  std::vector<float> out(a.Data().size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = 2.0f * a.Data()[i];
  return MakeOpResult("BadDouble", a.shape(), std::move(out), {a},
                      [a](const Tensor& output) {
                        if (!a.RequiresGrad()) return;
                        AccumulateGrad(a, MulScalar(output.Grad(), 3.0f));
                      });
}

TEST(OpGradCheckNegativeTest, WrongBackwardIsRejected) {
  Rng rng(11);
  Tensor x = Tensor::Rand({2, 3}, rng, 0.5f, 1.5f).SetRequiresGrad(true);
  GradCheckOptions options;
  options.log_mismatches = false;  // failures are expected here
  const GradCheckResult result = CheckGradients(
      [x]() { return Sum(BadDouble(x)); }, {x}, rng, options);
  EXPECT_FALSE(result.ok)
      << "gradcheck accepted a backward that is off by 1.5x — the checker "
      << "is vacuous";
  EXPECT_GT(result.max_relative_error, 0.3f);
  // The first-mismatch diagnostics must point at the bad comparison.
  EXPECT_EQ(result.bad_param, 0);
  EXPECT_GE(result.bad_entry, 0);
  EXPECT_NEAR(result.bad_analytic, 3.0f, 0.1f);
  EXPECT_NEAR(result.bad_numeric, 2.0f, 0.1f);
}

TEST(OpGradCheckNegativeTest, CorrectBackwardOfSameShapePasses) {
  // Control for the negative test: the identical harness with the true
  // derivative passes, so the rejection above is the checker working.
  Rng rng(11);
  Tensor x = Tensor::Rand({2, 3}, rng, 0.5f, 1.5f).SetRequiresGrad(true);
  const GradCheckResult result =
      CheckGradients([x]() { return Sum(MulScalar(x, 2.0f)); }, {x}, rng);
  EXPECT_TRUE(result.ok);
}

}  // namespace
}  // namespace d2stgnn
