// Stress tests: deep autograd tapes, high-rank shapes, and large fan-in —
// the regimes where a recursive or quadratic implementation would fall
// over.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/gru_cell.h"
#include "tensor/ops.h"

namespace d2stgnn {
namespace {

TEST(StressTest, VeryDeepTapeBackward) {
  // 3000 chained ops: the iterative topological sort must not overflow the
  // stack, and the gradient of x -> x + 3000 * 0.001 is exactly 1.
  Tensor x = Tensor::Full({4}, 1.0f).SetRequiresGrad(true);
  Tensor y = x;
  for (int i = 0; i < 3000; ++i) y = AddScalar(y, 0.001f);
  Sum(y).Backward();
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.Grad().At(i), 1.0f);
}

TEST(StressTest, LongRecurrenceBackward) {
  // 200 GRU steps on the same input: gradients stay finite and nonzero
  // (the gating keeps the chain from exploding at this depth).
  Rng rng(1);
  nn::GruCell cell(4, 4, rng);
  Tensor x = Tensor::Randn({2, 4}, rng).SetRequiresGrad(true);
  Tensor h = Tensor::Zeros({2, 4});
  for (int t = 0; t < 200; ++t) h = cell.Forward(x, h);
  Sum(Mul(h, h)).Backward();
  double mass = 0.0;
  for (float g : x.GradData()) {
    ASSERT_TRUE(std::isfinite(g));
    mass += std::fabs(g);
  }
  EXPECT_GT(mass, 0.0);
}

TEST(StressTest, Rank6BroadcastAndReduce) {
  Rng rng(2);
  Tensor a = Tensor::Randn({2, 1, 3, 1, 2, 1}, rng).SetRequiresGrad(true);
  Tensor b = Tensor::Randn({1, 4, 1, 2, 1, 3}, rng);
  Tensor c = Mul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 4, 3, 2, 2, 3}));
  Sum(c).Backward();
  EXPECT_EQ(a.Grad().shape(), a.shape());
  // grad of a = sum of b over broadcast dims.
  NoGradGuard no_grad;
  Tensor expected = ReduceToShape(BroadcastTo(b, c.shape()), a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.Grad().At(i), expected.At(i), 1e-4f);
  }
}

TEST(StressTest, WideConcatFanIn) {
  // 128 tensors concatenated; gradient slices back to each input.
  std::vector<Tensor> parts;
  for (int i = 0; i < 128; ++i) {
    parts.push_back(
        Tensor::Full({2, 1}, static_cast<float>(i)).SetRequiresGrad(true));
  }
  Tensor joined = Concat(parts, 1);
  EXPECT_EQ(joined.shape(), (Shape{2, 128}));
  Sum(MulScalar(joined, 2.0f)).Backward();
  for (const Tensor& p : parts) {
    EXPECT_FLOAT_EQ(p.Grad().At(0), 2.0f);
    EXPECT_FLOAT_EQ(p.Grad().At(1), 2.0f);
  }
}

TEST(StressTest, DiamondDependencyAccumulates) {
  // x feeds two branches that rejoin: gradients must accumulate once per
  // path (d/dx [x^2 + 3x] = 2x + 3).
  Tensor x = Tensor::Full({1}, 5.0f).SetRequiresGrad(true);
  Tensor branch_a = Mul(x, x);
  Tensor branch_b = MulScalar(x, 3.0f);
  Sum(Add(branch_a, branch_b)).Backward();
  EXPECT_NEAR(x.Grad().At(0), 13.0f, 1e-5f);
}

TEST(StressTest, ReusedSubgraphBackwardOnce) {
  // The same intermediate used by 4 consumers: its backward must run after
  // all consumers contributed (topological order), giving d/dx 4x^3... via
  // y = x^2, loss = y*y + y*y = 2 x^4 -> 8 x^3.
  Tensor x = Tensor::Full({1}, 1.5f).SetRequiresGrad(true);
  Tensor y = Mul(x, x);
  Tensor loss = Add(Mul(y, y), Mul(y, y));
  Sum(loss).Backward();
  EXPECT_NEAR(x.Grad().At(0), 8.0f * 1.5f * 1.5f * 1.5f, 1e-3f);
}

TEST(StressTest, LargeMatMulNumericallyStable) {
  Rng rng(3);
  Tensor a = Tensor::Randn({96, 96}, rng);
  Tensor b = Tensor::Randn({96, 96}, rng);
  NoGradGuard no_grad;
  Tensor c = MatMul(a, b);
  // Mean of |entries| of a product of standard normals is ~sqrt(96 * 2/pi).
  double mean_abs = 0.0;
  for (float v : c.Data()) {
    ASSERT_TRUE(std::isfinite(v));
    mean_abs += std::fabs(v);
  }
  mean_abs /= static_cast<double>(c.numel());
  EXPECT_NEAR(mean_abs, std::sqrt(96.0 * 2.0 / M_PI), 2.0);
}

TEST(StressTest, GradAccumulationAcrossBackwardCalls) {
  // Two Backward() calls without ZeroGrad: gradients add up (the optimizer
  // contract for gradient accumulation).
  Tensor x = Tensor::Full({1}, 2.0f).SetRequiresGrad(true);
  Sum(Mul(x, x)).Backward();
  Sum(Mul(x, x)).Backward();
  EXPECT_NEAR(x.Grad().At(0), 8.0f, 1e-5f);  // 2 * (2x)
  x.ZeroGrad();
  Sum(Mul(x, x)).Backward();
  EXPECT_NEAR(x.Grad().At(0), 4.0f, 1e-5f);
}

}  // namespace
}  // namespace d2stgnn
