// Tests of the persistence layer: CSV dataset round-trips and model
// checkpointing.

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/d2stgnn.h"
#include "data/csv_loader.h"
#include "data/synthetic_traffic.h"
#include "train/checkpoint.h"

namespace d2stgnn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

data::SyntheticTraffic MakeTraffic() {
  data::SyntheticTrafficOptions options;
  options.network.num_nodes = 6;
  options.num_steps = 300;
  options.seed = 61;
  return data::GenerateSyntheticTraffic(options);
}

TEST(CsvLoader, RoundTripPreservesDataset) {
  const auto traffic = MakeTraffic();
  const std::string readings = TempPath("readings.csv");
  const std::string distances = TempPath("distances.csv");
  ASSERT_TRUE(data::SaveCsvDataset(traffic.dataset, readings, distances));

  data::CsvDatasetOptions options;
  options.name = "roundtrip";
  data::TimeSeriesDataset loaded;
  ASSERT_TRUE(data::LoadCsvDataset(readings, distances, options, &loaded));
  EXPECT_EQ(loaded.num_steps(), traffic.dataset.num_steps());
  EXPECT_EQ(loaded.num_nodes(), traffic.dataset.num_nodes());
  for (int64_t i = 0; i < loaded.values.numel(); ++i) {
    EXPECT_NEAR(loaded.values.At(i), traffic.dataset.values.At(i), 1e-3f);
  }
  // Adjacency rebuilt from distances is structurally the same graph.
  int64_t mismatches = 0;
  for (int64_t i = 0; i < loaded.values.size(1); ++i) {
    for (int64_t j = 0; j < loaded.values.size(1); ++j) {
      const bool a = loaded.network.adjacency.At({i, j}) > 0.0f;
      const bool b = traffic.dataset.network.adjacency.At({i, j}) > 0.0f;
      if (a != b) ++mismatches;
    }
  }
  // The connectivity repair in BuildRandomSensorNetwork can add a couple of
  // sub-threshold edges the kernel reconstruction drops.
  EXPECT_LE(mismatches, 2);
}

TEST(CsvLoader, SkipsHeaderRows) {
  const std::string readings = TempPath("with_header.csv");
  const std::string distances = TempPath("with_header_dist.csv");
  {
    std::ofstream r(readings);
    r << "s0,s1\n1.0,2.0\n3.0,4.0\n5.0,6.0\n";
    std::ofstream d(distances);
    d << "from,to,distance\n0,1,1.5\n1,0,1.5\n";
  }
  data::CsvDatasetOptions options;
  // With only one distinct distance the Gaussian kernel weight is exp(-4)
  // regardless of scale; lower the threshold so the edge survives.
  options.kernel_threshold = 0.01f;
  data::TimeSeriesDataset loaded;
  ASSERT_TRUE(data::LoadCsvDataset(readings, distances, options, &loaded));
  EXPECT_EQ(loaded.num_steps(), 3);
  EXPECT_EQ(loaded.num_nodes(), 2);
  EXPECT_FLOAT_EQ(loaded.values.At({1, 1}), 4.0f);
  EXPECT_GT(loaded.network.adjacency.At({0, 1}), 0.0f);
}

TEST(CsvLoader, RejectsRaggedRows) {
  const std::string readings = TempPath("ragged.csv");
  const std::string distances = TempPath("ragged_dist.csv");
  {
    std::ofstream r(readings);
    r << "1.0,2.0\n3.0\n";
    std::ofstream d(distances);
    d << "0,1,1.0\n";
  }
  data::TimeSeriesDataset loaded;
  EXPECT_FALSE(data::LoadCsvDataset(readings, distances,
                                    data::CsvDatasetOptions(), &loaded));
}

TEST(CsvLoader, RejectsNonFiniteReadings) {
  const std::string readings = TempPath("nonfinite.csv");
  const std::string distances = TempPath("nonfinite_dist.csv");
  {
    std::ofstream r(readings);
    r << "1.0,2.0\n3.0,nan\n";
    std::ofstream d(distances);
    d << "0,1,1.0\n";
  }
  data::TimeSeriesDataset loaded;
  EXPECT_FALSE(data::LoadCsvDataset(readings, distances,
                                    data::CsvDatasetOptions(), &loaded));
  // inf is rejected the same way.
  {
    std::ofstream r(readings);
    r << "1.0,2.0\ninf,4.0\n";
  }
  EXPECT_FALSE(data::LoadCsvDataset(readings, distances,
                                    data::CsvDatasetOptions(), &loaded));
}

TEST(CsvLoader, RejectsNonFiniteOrNegativeDistance) {
  const std::string readings = TempPath("baddist.csv");
  const std::string distances = TempPath("baddist_dist.csv");
  {
    std::ofstream r(readings);
    r << "1.0,2.0\n3.0,4.0\n";
    std::ofstream d(distances);
    d << "0,1,inf\n";
  }
  data::TimeSeriesDataset loaded;
  EXPECT_FALSE(data::LoadCsvDataset(readings, distances,
                                    data::CsvDatasetOptions(), &loaded));
  {
    std::ofstream d(distances);
    d << "0,1,-2.0\n";
  }
  EXPECT_FALSE(data::LoadCsvDataset(readings, distances,
                                    data::CsvDatasetOptions(), &loaded));
}

TEST(CsvLoader, RejectsWrongDistanceColumnCount) {
  const std::string readings = TempPath("cols.csv");
  const std::string distances = TempPath("cols_dist.csv");
  {
    std::ofstream r(readings);
    r << "1.0,2.0\n3.0,4.0\n";
    std::ofstream d(distances);
    d << "0,1\n";
  }
  data::TimeSeriesDataset loaded;
  EXPECT_FALSE(data::LoadCsvDataset(readings, distances,
                                    data::CsvDatasetOptions(), &loaded));
}

TEST(CsvLoader, RejectsMissingFile) {
  data::TimeSeriesDataset loaded;
  EXPECT_FALSE(data::LoadCsvDataset("/nonexistent/readings.csv",
                                    "/nonexistent/dist.csv",
                                    data::CsvDatasetOptions(), &loaded));
}

TEST(CsvLoader, RejectsOutOfRangeSensorIndex) {
  const std::string readings = TempPath("oor.csv");
  const std::string distances = TempPath("oor_dist.csv");
  {
    std::ofstream r(readings);
    r << "1.0,2.0\n3.0,4.0\n";
    std::ofstream d(distances);
    d << "0,9,1.0\n";
  }
  data::TimeSeriesDataset loaded;
  EXPECT_FALSE(data::LoadCsvDataset(readings, distances,
                                    data::CsvDatasetOptions(), &loaded));
}

class CheckpointTest : public ::testing::Test {
 protected:
  core::D2StgnnConfig Config() {
    core::D2StgnnConfig config;
    config.num_nodes = 6;
    config.hidden_dim = 8;
    config.embed_dim = 4;
    config.num_layers = 1;
    config.num_heads = 2;
    return config;
  }
};

TEST_F(CheckpointTest, SaveLoadRoundTrip) {
  const auto traffic = MakeTraffic();
  Rng rng_a(1);
  core::D2Stgnn model_a(Config(), traffic.dataset.network.adjacency, rng_a);
  const std::string path = TempPath("model.ckpt");
  ASSERT_TRUE(train::SaveCheckpoint(model_a, path));

  // A differently initialized model converges to A's weights after load.
  Rng rng_b(999);
  core::D2Stgnn model_b(Config(), traffic.dataset.network.adjacency, rng_b);
  ASSERT_TRUE(train::LoadCheckpoint(&model_b, path));

  const auto params_a = model_a.Parameters();
  const auto params_b = model_b.Parameters();
  ASSERT_EQ(params_a.size(), params_b.size());
  for (size_t i = 0; i < params_a.size(); ++i) {
    ASSERT_EQ(params_a[i].Data().size(), params_b[i].Data().size());
    for (size_t j = 0; j < params_a[i].Data().size(); ++j) {
      EXPECT_FLOAT_EQ(params_a[i].Data()[j], params_b[i].Data()[j]);
    }
  }
}

TEST_F(CheckpointTest, LoadedModelPredictsIdentically) {
  const auto traffic = MakeTraffic();
  data::StandardScaler scaler;
  scaler.Fit(traffic.dataset.values, 200, true);
  const auto splits = data::MakeChronologicalSplits(300, 12, 12, 0.7f, 0.1f);
  data::WindowDataLoader loader(&traffic.dataset, &scaler, splits.test, 12,
                                12, 4);
  const data::Batch batch = loader.GetBatch(0);

  Rng rng_a(1);
  core::D2Stgnn model_a(Config(), traffic.dataset.network.adjacency, rng_a);
  const std::string path = TempPath("model2.ckpt");
  ASSERT_TRUE(train::SaveCheckpoint(model_a, path));
  Rng rng_b(2);
  core::D2Stgnn model_b(Config(), traffic.dataset.network.adjacency, rng_b);
  ASSERT_TRUE(train::LoadCheckpoint(&model_b, path));

  NoGradGuard no_grad;
  model_a.SetTraining(false);
  model_b.SetTraining(false);
  const Tensor pred_a = model_a.Forward(batch);
  const Tensor pred_b = model_b.Forward(batch);
  for (int64_t i = 0; i < pred_a.numel(); ++i) {
    EXPECT_FLOAT_EQ(pred_a.At(i), pred_b.At(i));
  }
}

TEST_F(CheckpointTest, RejectsArchitectureMismatch) {
  const auto traffic = MakeTraffic();
  Rng rng(1);
  core::D2Stgnn model(Config(), traffic.dataset.network.adjacency, rng);
  const std::string path = TempPath("model3.ckpt");
  ASSERT_TRUE(train::SaveCheckpoint(model, path));

  auto other_config = Config();
  other_config.hidden_dim = 12;  // different widths
  Rng rng2(2);
  core::D2Stgnn other(other_config, traffic.dataset.network.adjacency, rng2);
  EXPECT_FALSE(train::LoadCheckpoint(&other, path));
}

TEST_F(CheckpointTest, RejectsCorruptFile) {
  const std::string path = TempPath("garbage.ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  const auto traffic = MakeTraffic();
  Rng rng(1);
  core::D2Stgnn model(Config(), traffic.dataset.network.adjacency, rng);
  EXPECT_FALSE(train::LoadCheckpoint(&model, path));
}

}  // namespace
}  // namespace d2stgnn
