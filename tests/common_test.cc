#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include <gtest/gtest.h>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "common/text_plot.h"

namespace d2stgnn {
namespace {

TEST(RngTest, DeterministicStreams) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.Uniform(-2.0f, 5.0f);
    EXPECT_GE(u, -2.0f);
    EXPECT_LT(u, 5.0f);
  }
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(4);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const float x = rng.Normal();
    sum += x;
    sum_sq += static_cast<double>(x) * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(5);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[static_cast<size_t>(rng.UniformInt(7))];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(6);
  auto perm = rng.Permutation(50);
  std::sort(perm.begin(), perm.end());
  for (int64_t i = 0; i < 50; ++i) EXPECT_EQ(perm[static_cast<size_t>(i)], i);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += std::sqrt(static_cast<double>(i));
  volatile double observe = sink;  // keep the loop from being elided
  (void)observe;
  EXPECT_GT(watch.ElapsedSeconds(), 0.0);
  EXPECT_GE(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3 - 1e3);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

TEST(TablePrinterTest, AlignsColumnsAndSeparators) {
  TablePrinter table({"Name", "Value"});
  table.AddRow({"alpha", "1"});
  table.AddSeparator();
  table.AddRow({"b", "12345"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("| Name  | Value |"), std::string::npos);
  EXPECT_NE(rendered.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(rendered.find("|-------|-------|"), std::string::npos);
}

TEST(TablePrinterTest, NumberFormatting) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Percent(0.0648), "6.48%");
}

TEST(TextPlotTest, RendersSeriesWithinBounds) {
  PlotSeries s{"wave", {}, '*'};
  for (int i = 0; i < 200; ++i) {
    s.values.push_back(std::sin(static_cast<float>(i) * 0.1f));
  }
  const std::string plot = TextPlot({s}, 60, 10);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("wave"), std::string::npos);
  // 10 grid rows + 2 borders + legend.
  EXPECT_EQ(static_cast<int>(std::count(plot.begin(), plot.end(), '\n')), 13);
}

TEST(TextPlotTest, HandlesConstantSeries) {
  PlotSeries s{"flat", std::vector<float>(50, 3.0f), '#'};
  const std::string plot = TextPlot({s}, 40, 8);
  EXPECT_NE(plot.find('#'), std::string::npos);
}

TEST(TextPlotTest, CsvWriterRoundTrips) {
  PlotSeries a{"a", {1.0f, 2.0f}, '*'};
  PlotSeries b{"b", {3.0f, 4.0f}, '.'};
  const std::string path = ::testing::TempDir() + "/plot.csv";
  ASSERT_TRUE(WriteSeriesCsv(path, {a, b}));
  std::ifstream in(path);
  std::string header, row0;
  std::getline(in, header);
  std::getline(in, row0);
  EXPECT_EQ(header, "index,a,b");
  EXPECT_EQ(row0, "0,1,3");
}

}  // namespace
}  // namespace d2stgnn
