// Tests of the shared execution layer: pool lifecycle, ParallelFor index
// coverage, deterministic partitioning, nested calls, and exception
// propagation.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace d2stgnn {
namespace {

class ThreadPoolTest : public ::testing::Test {
 protected:
  // Leave the process in the default single-threaded state so test order
  // cannot leak a thread-count change.
  void TearDown() override { SetNumThreads(1); }
};

TEST_F(ThreadPoolTest, SetAndGetNumThreads) {
  SetNumThreads(1);
  EXPECT_EQ(GetNumThreads(), 1);
  SetNumThreads(4);
  EXPECT_EQ(GetNumThreads(), 4);
  SetNumThreads(2);
  EXPECT_EQ(GetNumThreads(), 2);
}

TEST_F(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    SetNumThreads(threads);
    for (int64_t n : {0LL, 1LL, 7LL, 64LL, 1000LL, 4097LL}) {
      for (int64_t grain : {1LL, 3LL, 64LL, 5000LL}) {
        std::vector<std::atomic<int>> counts(static_cast<size_t>(n));
        for (auto& c : counts) c = 0;
        ParallelFor(0, n, grain, [&](int64_t lo, int64_t hi) {
          ASSERT_LE(lo, hi);
          for (int64_t i = lo; i < hi; ++i) {
            counts[static_cast<size_t>(i)].fetch_add(1);
          }
        });
        for (int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(counts[static_cast<size_t>(i)].load(), 1)
              << "index " << i << " n=" << n << " grain=" << grain
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST_F(ThreadPoolTest, NonZeroBeginIsRespected) {
  SetNumThreads(4);
  std::atomic<int64_t> sum{0};
  ParallelFor(10, 110, 7, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), (10 + 109) * 100 / 2);
}

TEST_F(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  auto collect = [](int threads) {
    SetNumThreads(threads);
    std::mutex mutex;
    std::vector<std::pair<int64_t, int64_t>> chunks;
    ParallelFor(0, 1000, 64, [&](int64_t lo, int64_t hi) {
      std::lock_guard<std::mutex> lock(mutex);
      chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto at1 = collect(1);
  const auto at4 = collect(4);
  EXPECT_EQ(at1, at4);
  ASSERT_EQ(at1.size(), 16u);  // ceil(1000 / 64)
  EXPECT_EQ(at1.front(), (std::pair<int64_t, int64_t>{0, 64}));
  EXPECT_EQ(at1.back(), (std::pair<int64_t, int64_t>{960, 1000}));
}

TEST_F(ThreadPoolTest, NestedParallelForRunsSerially) {
  SetNumThreads(4);
  std::vector<std::atomic<int>> counts(256);
  for (auto& c : counts) c = 0;
  ParallelFor(0, 16, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      EXPECT_TRUE(InParallelRegion());
      ParallelFor(0, 16, 1, [&](int64_t ilo, int64_t ihi) {
        for (int64_t i = ilo; i < ihi; ++i) {
          counts[static_cast<size_t>(o * 16 + i)].fetch_add(1);
        }
      });
    }
  });
  EXPECT_FALSE(InParallelRegion());
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST_F(ThreadPoolTest, ExceptionPropagatesToCaller) {
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    EXPECT_THROW(
        ParallelFor(0, 1000, 10,
                    [&](int64_t lo, int64_t) {
                      if (lo == 500) throw std::runtime_error("chunk failed");
                    }),
        std::runtime_error);
    // The pool survives a throwing job and runs subsequent work.
    std::atomic<int64_t> done{0};
    ParallelFor(0, 100, 10,
                [&](int64_t lo, int64_t hi) { done.fetch_add(hi - lo); });
    EXPECT_EQ(done.load(), 100);
  }
}

TEST_F(ThreadPoolTest, PoolSurvivesRepeatedResizing) {
  for (int round = 0; round < 3; ++round) {
    for (int threads : {1, 2, 4, 3}) {
      SetNumThreads(threads);
      std::atomic<int64_t> sum{0};
      ParallelFor(0, 500, 16,
                  [&](int64_t lo, int64_t hi) { sum.fetch_add(hi - lo); });
      ASSERT_EQ(sum.load(), 500);
    }
  }
}

TEST_F(ThreadPoolTest, DefaultGrainHandlesLargeRanges) {
  SetNumThreads(4);
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 1 << 20, /*grain=*/0,
              [&](int64_t lo, int64_t hi) { sum.fetch_add(hi - lo); });
  EXPECT_EQ(sum.load(), 1 << 20);
}

}  // namespace
}  // namespace d2stgnn
