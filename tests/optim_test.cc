#include "optim/adam.h"

#include <cmath>

#include <gtest/gtest.h>

#include "optim/lr_scheduler.h"
#include "optim/sgd.h"
#include "tensor/ops.h"

namespace d2stgnn::optim {
namespace {

// Minimizes f(w) = (w - target)^2 with the given optimizer; returns |w -
// target| after `steps`.
template <typename Opt>
float MinimizeQuadratic(Opt& optimizer, Tensor& w, float target,
                        int64_t steps) {
  for (int64_t i = 0; i < steps; ++i) {
    Tensor diff = Sub(w, Tensor::Scalar(target));
    Tensor loss = Sum(Mul(diff, diff));
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
  }
  return std::fabs(w.At(0) - target);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor w = Tensor::Zeros({1}).SetRequiresGrad(true);
  Sgd sgd({w}, 0.1f);
  EXPECT_LT(MinimizeQuadratic(sgd, w, 3.0f, 50), 1e-3f);
}

TEST(SgdTest, MomentumAcceleratesConvergence) {
  Tensor w1 = Tensor::Zeros({1}).SetRequiresGrad(true);
  Tensor w2 = Tensor::Zeros({1}).SetRequiresGrad(true);
  Sgd plain({w1}, 0.01f);
  Sgd momentum({w2}, 0.01f, 0.9f);
  const float err_plain = MinimizeQuadratic(plain, w1, 3.0f, 30);
  const float err_momentum = MinimizeQuadratic(momentum, w2, 3.0f, 30);
  EXPECT_LT(err_momentum, err_plain);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor w = Tensor::Zeros({1}).SetRequiresGrad(true);
  Adam adam({w}, 0.2f);
  EXPECT_LT(MinimizeQuadratic(adam, w, -2.0f, 100), 1e-2f);
}

TEST(AdamTest, FirstStepSizeIsLearningRate) {
  // With bias correction, the first Adam update has magnitude ~lr
  // regardless of gradient scale.
  Tensor w = Tensor::Zeros({1}).SetRequiresGrad(true);
  Adam adam({w}, 0.1f);
  Tensor loss = Sum(MulScalar(w, 1000.0f));
  adam.ZeroGrad();
  loss.Backward();
  adam.Step();
  EXPECT_NEAR(w.At(0), -0.1f, 1e-4f);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Tensor w = Tensor::Full({1}, 5.0f).SetRequiresGrad(true);
  Adam adam({w}, 0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/1.0f);
  // Zero loss gradient: only decay acts.
  Tensor loss = Sum(MulScalar(w, 0.0f));
  adam.ZeroGrad();
  loss.Backward();
  adam.Step();
  EXPECT_LT(w.At(0), 5.0f);
}

TEST(AdamTest, SkipsParamsWithoutGrad) {
  Tensor used = Tensor::Zeros({1}).SetRequiresGrad(true);
  Tensor unused = Tensor::Full({1}, 7.0f).SetRequiresGrad(true);
  Adam adam({used, unused}, 0.1f);
  Tensor loss = Sum(Mul(used, used));
  adam.ZeroGrad();
  loss.Backward();
  adam.Step();
  EXPECT_FLOAT_EQ(unused.At(0), 7.0f);
}

TEST(ClipGradNorm, ScalesDownLargeGradients) {
  Tensor w = Tensor::Zeros({2}).SetRequiresGrad(true);
  Tensor loss = Sum(MulScalar(w, 30.0f));  // grad = [30, 30]
  loss.Backward();
  const float norm = ClipGradNorm({w}, 1.0f);
  EXPECT_NEAR(norm, 30.0f * std::sqrt(2.0f), 1e-3f);
  double clipped = 0.0;
  for (float g : w.GradData()) clipped += static_cast<double>(g) * g;
  EXPECT_NEAR(std::sqrt(clipped), 1.0, 1e-4);
}

TEST(ClipGradNorm, LeavesSmallGradientsAlone) {
  Tensor w = Tensor::Zeros({2}).SetRequiresGrad(true);
  Sum(MulScalar(w, 0.1f)).Backward();
  ClipGradNorm({w}, 1.0f);
  EXPECT_NEAR(w.GradData()[0], 0.1f, 1e-6f);
}

TEST(StepDecaySchedulerTest, DecaysAtMilestones) {
  StepDecayScheduler scheduler(1.0f, {5, 10}, 0.1f);
  EXPECT_FLOAT_EQ(scheduler.LearningRateAt(0), 1.0f);
  EXPECT_FLOAT_EQ(scheduler.LearningRateAt(4), 1.0f);
  EXPECT_FLOAT_EQ(scheduler.LearningRateAt(5), 0.1f);
  EXPECT_NEAR(scheduler.LearningRateAt(10), 0.01f, 1e-7f);
  Tensor w = Tensor::Zeros({1}).SetRequiresGrad(true);
  Adam adam({w}, 1.0f);
  scheduler.Apply(adam, 7);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.1f);
}

}  // namespace
}  // namespace d2stgnn::optim
