#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace d2stgnn {
namespace {

TEST(TensorBasics, ShapeAndFill) {
  Tensor t({2, 3}, 1.5f);
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(-1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (float v : t.Data()) EXPECT_FLOAT_EQ(v, 1.5f);
}

TEST(TensorBasics, FromData) {
  Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_FLOAT_EQ(t.At({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(t.At({0, 1}), 2.0f);
  EXPECT_FLOAT_EQ(t.At({1, 0}), 3.0f);
  EXPECT_FLOAT_EQ(t.At({1, 1}), 4.0f);
}

TEST(TensorBasics, Eye) {
  Tensor eye = Tensor::Eye(3);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(eye.At({i, j}), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(TensorBasics, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(3.5f).Item(), 3.5f);
}

TEST(TensorBasics, DetachSharesNothing) {
  Tensor a = Tensor::Ones({2});
  a.SetRequiresGrad(true);
  Tensor b = a.Detach();
  EXPECT_FALSE(b.RequiresGrad());
  b.Data()[0] = 9.0f;
  EXPECT_FLOAT_EQ(a.At(0), 1.0f);
}

TEST(ElementwiseOps, AddSameShape) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {10, 20, 30, 40});
  Tensor c = Add(a, b);
  EXPECT_FLOAT_EQ(c.At(0), 11.0f);
  EXPECT_FLOAT_EQ(c.At(3), 44.0f);
}

TEST(ElementwiseOps, BroadcastBiasAdd) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias({3}, {10, 20, 30});
  Tensor c = Add(a, bias);
  EXPECT_FLOAT_EQ(c.At({0, 0}), 11.0f);
  EXPECT_FLOAT_EQ(c.At({1, 2}), 36.0f);
}

TEST(ElementwiseOps, BroadcastLeadingDim) {
  Tensor a({2, 1, 2}, {1, 2, 3, 4});
  Tensor b({3, 1}, {10, 20, 30});
  Tensor c = Mul(a, b);  // -> [2, 3, 2]
  EXPECT_EQ(c.shape(), (Shape{2, 3, 2}));
  EXPECT_FLOAT_EQ(c.At({0, 0, 0}), 10.0f);
  EXPECT_FLOAT_EQ(c.At({1, 2, 1}), 120.0f);
}

TEST(ElementwiseOps, ScalarOperators) {
  Tensor a({2}, {1.0f, -2.0f});
  EXPECT_FLOAT_EQ((a + 1.0f).At(0), 2.0f);
  EXPECT_FLOAT_EQ((a * 3.0f).At(1), -6.0f);
  EXPECT_FLOAT_EQ((1.0f - a).At(1), 3.0f);
  EXPECT_FLOAT_EQ((-a).At(0), -1.0f);
}

TEST(ElementwiseOps, UnaryValues) {
  Tensor a({3}, {-1.0f, 0.0f, 2.0f});
  EXPECT_FLOAT_EQ(Relu(a).At(0), 0.0f);
  EXPECT_FLOAT_EQ(Relu(a).At(2), 2.0f);
  EXPECT_NEAR(Sigmoid(a).At(1), 0.5f, 1e-6f);
  EXPECT_NEAR(Tanh(a).At(2), std::tanh(2.0f), 1e-6f);
  EXPECT_FLOAT_EQ(Abs(a).At(0), 1.0f);
}

TEST(MatMulOp, TwoByTwo) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At({0, 0}), 19.0f);
  EXPECT_FLOAT_EQ(c.At({0, 1}), 22.0f);
  EXPECT_FLOAT_EQ(c.At({1, 0}), 43.0f);
  EXPECT_FLOAT_EQ(c.At({1, 1}), 50.0f);
}

TEST(MatMulOp, BatchedBroadcastLhs) {
  // [N, M] x [B, M, d]: the static-support pattern of the diffusion model.
  Tensor p({1, 2, 2}, {1, 0, 0, 2});
  Tensor x({3, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(p, x);
  EXPECT_EQ(c.shape(), (Shape{3, 2, 2}));
  EXPECT_FLOAT_EQ(c.At({0, 0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(c.At({0, 1, 0}), 6.0f);
  EXPECT_FLOAT_EQ(c.At({2, 1, 1}), 24.0f);
}

TEST(MatMulOp, NdTimes2d) {
  Tensor x({2, 3, 4}, std::vector<float>(24, 1.0f));
  Tensor w({4, 5}, std::vector<float>(20, 0.5f));
  Tensor y = MatMul(x, w);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 5}));
  for (float v : y.Data()) EXPECT_FLOAT_EQ(v, 2.0f);
}

TEST(Reductions, SumAndMean) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(Sum(a).Item(), 21.0f);
  EXPECT_FLOAT_EQ(Mean(a).Item(), 3.5f);
  Tensor s0 = Sum(a, 0, false);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(s0.At(0), 5.0f);
  Tensor s1 = Sum(a, 1, true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(s1.At(1), 15.0f);
  EXPECT_FLOAT_EQ(Mean(a, 1, false).At(0), 2.0f);
}

TEST(Reductions, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Tensor a = Tensor::Randn({4, 7}, rng);
  Tensor s = Softmax(a, -1);
  for (int64_t i = 0; i < 4; ++i) {
    float row = 0.0f;
    for (int64_t j = 0; j < 7; ++j) row += s.At({i, j});
    EXPECT_NEAR(row, 1.0f, 1e-5f);
  }
}

TEST(Reductions, SoftmaxStableWithLargeLogits) {
  Tensor a({1, 2}, {1000.0f, 1001.0f});
  Tensor s = Softmax(a, -1);
  EXPECT_NEAR(s.At(0) + s.At(1), 1.0f, 1e-5f);
  EXPECT_GT(s.At(1), s.At(0));
}

TEST(ShapeOps, ReshapeInfer) {
  Tensor a({2, 6}, std::vector<float>(12, 1.0f));
  Tensor b = Reshape(a, {3, -1});
  EXPECT_EQ(b.shape(), (Shape{3, 4}));
}

TEST(ShapeOps, PermuteRoundTrip) {
  Tensor a({2, 3, 4}, [] {
    std::vector<float> v(24);
    for (size_t i = 0; i < 24; ++i) v[i] = static_cast<float>(i);
    return v;
  }());
  Tensor p = Permute(a, {2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  EXPECT_FLOAT_EQ(p.At({1, 0, 2}), a.At({0, 2, 1}));
  Tensor back = Permute(p, {1, 2, 0});
  for (int64_t i = 0; i < 24; ++i) EXPECT_FLOAT_EQ(back.At(i), a.At(i));
}

TEST(ShapeOps, TransposeMatrix) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a, 0, 1);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(t.At({2, 1}), 6.0f);
}

TEST(ShapeOps, ConcatAndSlice) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 3}, {5, 6, 7, 8, 9, 10});
  Tensor c = Concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 5}));
  EXPECT_FLOAT_EQ(c.At({0, 2}), 5.0f);
  EXPECT_FLOAT_EQ(c.At({1, 4}), 10.0f);
  Tensor s = Slice(c, 1, 2, 5);
  EXPECT_EQ(s.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(s.At({1, 0}), 8.0f);
}

TEST(ShapeOps, StackAndSelect) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 4});
  Tensor s = Stack({a, b}, 0);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  Tensor row = Select(s, 0, 1);
  EXPECT_EQ(row.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(row.At(0), 3.0f);
}

TEST(ShapeOps, PadFrontAddsZeros) {
  Tensor a({1, 2, 1}, {1, 2});
  Tensor p = PadFront(a, 1, 2);
  EXPECT_EQ(p.shape(), (Shape{1, 4, 1}));
  EXPECT_FLOAT_EQ(p.At({0, 0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(p.At({0, 3, 0}), 2.0f);
}

TEST(ShapeOps, BroadcastToExpands) {
  Tensor a({1, 3}, {1, 2, 3});
  Tensor b = BroadcastTo(a, {2, 3});
  EXPECT_FLOAT_EQ(b.At({1, 2}), 3.0f);
}

TEST(IndexOps, EmbeddingLookup) {
  Tensor table({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor out = EmbeddingLookup(table, {2, 0, 2}, {3});
  EXPECT_EQ(out.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(out.At({0, 1}), 21.0f);
  EXPECT_FLOAT_EQ(out.At({1, 0}), 0.0f);
}

TEST(DropoutOp, EvalIsIdentityTrainZeroesSome) {
  Rng rng(5);
  Tensor a = Tensor::Ones({1000});
  Tensor eval_out = Dropout(a, 0.5f, /*training=*/false, rng);
  for (int64_t i = 0; i < 1000; ++i) EXPECT_FLOAT_EQ(eval_out.At(i), 1.0f);
  Tensor train_out = Dropout(a, 0.5f, /*training=*/true, rng);
  int64_t zeros = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    if (train_out.At(i) == 0.0f) ++zeros;
  }
  EXPECT_GT(zeros, 300);
  EXPECT_LT(zeros, 700);
}

// ---------------------------------------------------------------------------
// Autograd.

TEST(Autograd, SimpleChain) {
  Tensor x = Tensor::Full({1}, 2.0f);
  x.SetRequiresGrad(true);
  Tensor y = Sum(Mul(x, x));  // y = x^2
  y.Backward();
  EXPECT_NEAR(x.Grad().At(0), 4.0f, 1e-5f);
}

TEST(Autograd, GradAccumulatesOverUses) {
  Tensor x = Tensor::Full({1}, 3.0f);
  x.SetRequiresGrad(true);
  Tensor y = Sum(Add(x, x));  // y = 2x
  y.Backward();
  EXPECT_NEAR(x.Grad().At(0), 2.0f, 1e-5f);
}

TEST(Autograd, NoGradGuardSuppressesTape) {
  Tensor x = Tensor::Ones({2});
  x.SetRequiresGrad(true);
  NoGradGuard guard;
  Tensor y = Mul(x, x);
  EXPECT_EQ(y.impl()->grad_fn, nullptr);
}

TEST(Autograd, BroadcastAddReducesGrad) {
  Tensor a = Tensor::Ones({2, 3});
  Tensor b = Tensor::Ones({3});
  a.SetRequiresGrad(true);
  b.SetRequiresGrad(true);
  Sum(Add(a, b)).Backward();
  EXPECT_EQ(b.Grad().shape(), (Shape{3}));
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(b.Grad().At(i), 2.0f, 1e-5f);
}

class GradCheckTest : public ::testing::Test {
 protected:
  Rng rng_{11};
};

TEST_F(GradCheckTest, MatMul) {
  Tensor a = Tensor::Randn({3, 4}, rng_).SetRequiresGrad(true);
  Tensor b = Tensor::Randn({4, 2}, rng_).SetRequiresGrad(true);
  auto loss = [&] { return Sum(Mul(MatMul(a, b), MatMul(a, b))); };
  auto result = CheckGradients(loss, {a, b}, rng_);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

TEST_F(GradCheckTest, BatchedMatMulBroadcast) {
  Tensor p = Tensor::Randn({2, 3}, rng_).SetRequiresGrad(true);
  Tensor x = Tensor::Randn({4, 3, 2}, rng_).SetRequiresGrad(true);
  auto loss = [&] { return Sum(Abs(MatMul(p, x))); };
  auto result = CheckGradients(loss, {p, x}, rng_);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

TEST_F(GradCheckTest, SoftmaxMul) {
  Tensor a = Tensor::Randn({3, 5}, rng_).SetRequiresGrad(true);
  Tensor w = Tensor::Randn({3, 5}, rng_).SetRequiresGrad(true);
  auto loss = [&] { return Sum(Mul(Softmax(a, -1), w)); };
  auto result = CheckGradients(loss, {a, w}, rng_);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

TEST_F(GradCheckTest, DivAndLog) {
  Tensor a = Tensor::Rand({4}, rng_, 0.5f, 2.0f).SetRequiresGrad(true);
  Tensor b = Tensor::Rand({4}, rng_, 0.5f, 2.0f).SetRequiresGrad(true);
  auto loss = [&] { return Sum(Log(Div(a, b))); };
  auto result = CheckGradients(loss, {a, b}, rng_, 1e-3f);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

TEST_F(GradCheckTest, SigmoidTanhExp) {
  Tensor a = Tensor::Randn({6}, rng_).SetRequiresGrad(true);
  auto loss = [&] { return Sum(Exp(Mul(Sigmoid(a), Tanh(a)))); };
  auto result = CheckGradients(loss, {a}, rng_);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

TEST_F(GradCheckTest, ConcatSlicePermute) {
  Tensor a = Tensor::Randn({2, 3}, rng_).SetRequiresGrad(true);
  Tensor b = Tensor::Randn({2, 2}, rng_).SetRequiresGrad(true);
  auto loss = [&] {
    Tensor c = Concat({a, b}, 1);               // [2, 5]
    Tensor p = Permute(c, {1, 0});              // [5, 2]
    return Sum(Mul(Slice(p, 0, 1, 4), Slice(p, 0, 1, 4)));
  };
  auto result = CheckGradients(loss, {a, b}, rng_);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

TEST_F(GradCheckTest, SumDimMeanReduce) {
  Tensor a = Tensor::Randn({3, 4}, rng_).SetRequiresGrad(true);
  auto loss = [&] { return Sum(Mul(Mean(a, 1, true), Sum(a, 0, false))); };
  auto result = CheckGradients(loss, {a}, rng_);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

TEST_F(GradCheckTest, EmbeddingScatter) {
  Tensor table = Tensor::Randn({5, 3}, rng_).SetRequiresGrad(true);
  auto loss = [&] {
    Tensor rows = EmbeddingLookup(table, {1, 1, 4}, {3});
    return Sum(Mul(rows, rows));
  };
  auto result = CheckGradients(loss, {table}, rng_);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

TEST_F(GradCheckTest, BroadcastToReduce) {
  Tensor a = Tensor::Randn({1, 4}, rng_).SetRequiresGrad(true);
  auto loss = [&] { return Sum(Abs(BroadcastTo(a, {3, 4}))); };
  auto result = CheckGradients(loss, {a}, rng_);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

}  // namespace
}  // namespace d2stgnn
