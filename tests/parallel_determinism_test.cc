// Asserts the execution-layer determinism contract: every kernel produces
// bitwise-identical forward AND backward results at 1 and N threads, because
// chunk boundaries and accumulation order depend only on the problem shape,
// never on the thread count. Also grad-checks the refactored kernels while
// running multi-threaded.

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/d2stgnn.h"
#include "data/synthetic_traffic.h"
#include "metrics/metrics.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace d2stgnn {
namespace {

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { SetNumThreads(1); }
};

// Forward data plus the gradients of every leaf, captured after Backward.
struct RunResult {
  std::vector<float> out;
  std::vector<std::vector<float>> grads;
};

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    uint32_t bits_a = 0, bits_b = 0;
    std::memcpy(&bits_a, &a[i], sizeof(bits_a));
    std::memcpy(&bits_b, &b[i], sizeof(bits_b));
    ASSERT_EQ(bits_a, bits_b)
        << what << " differs at flat index " << i << ": " << a[i] << " vs "
        << b[i];
  }
}

// Builds fresh leaves from a fixed seed, runs `op` forward + backward, and
// returns the bits. Calling this at different thread counts must give
// identical results.
RunResult RunOp(
    int threads, const std::vector<Shape>& leaf_shapes,
    const std::function<Tensor(const std::vector<Tensor>&)>& op) {
  SetNumThreads(threads);
  Rng rng(1234);
  std::vector<Tensor> leaves;
  for (const Shape& shape : leaf_shapes) {
    leaves.push_back(Tensor::Randn(shape, rng).SetRequiresGrad(true));
  }
  Tensor out = op(leaves);
  // Weight the output so reduction gradients are non-uniform.
  Tensor weights = Tensor::Randn(out.shape(), rng);
  Sum(Mul(out, weights)).Backward();
  RunResult result;
  result.out = out.Data();
  for (const Tensor& leaf : leaves) result.grads.push_back(leaf.GradData());
  return result;
}

void ExpectOpParity(
    const char* name, const std::vector<Shape>& leaf_shapes,
    const std::function<Tensor(const std::vector<Tensor>&)>& op) {
  const RunResult at1 = RunOp(1, leaf_shapes, op);
  for (int threads : {2, 4}) {
    const RunResult atn = RunOp(threads, leaf_shapes, op);
    ExpectBitwiseEqual(at1.out, atn.out, name);
    ASSERT_EQ(at1.grads.size(), atn.grads.size());
    for (size_t i = 0; i < at1.grads.size(); ++i) {
      ExpectBitwiseEqual(at1.grads[i], atn.grads[i], name);
    }
  }
}

TEST_F(ParallelDeterminismTest, MatMulForwardBackwardParity) {
  ExpectOpParity("MatMul2D", {{33, 47}, {47, 29}},
                 [](const std::vector<Tensor>& t) {
                   return MatMul(t[0], t[1]);
                 });
  // Broadcast-batched: [5, 17, 19] x [19, 13] and [17, 19] x [5, 19, 13].
  ExpectOpParity("MatMulBatchedLeft", {{5, 17, 19}, {19, 13}},
                 [](const std::vector<Tensor>& t) {
                   return MatMul(t[0], t[1]);
                 });
  ExpectOpParity("MatMulBatchedRight", {{17, 19}, {5, 19, 13}},
                 [](const std::vector<Tensor>& t) {
                   return MatMul(t[0], t[1]);
                 });
}

TEST_F(ParallelDeterminismTest, SoftmaxForwardBackwardParity) {
  ExpectOpParity("Softmax", {{7, 33, 65}},
                 [](const std::vector<Tensor>& t) {
                   return Softmax(t[0], -1);
                 });
}

TEST_F(ParallelDeterminismTest, SumForwardBackwardParity) {
  ExpectOpParity("SumAll", {{123, 457}},
                 [](const std::vector<Tensor>& t) {
                   return Sum(t[0]);
                 });
  ExpectOpParity("SumDim", {{9, 1000, 3}},
                 [](const std::vector<Tensor>& t) {
                   return Sum(t[0], 1, /*keepdim=*/false);
                 });
  ExpectOpParity("MaxDim", {{9, 1000}},
                 [](const std::vector<Tensor>& t) {
                   return Max(t[0], 1, /*keepdim=*/false);
                 });
}

TEST_F(ParallelDeterminismTest, ElementwiseForwardBackwardParity) {
  ExpectOpParity("SigmoidTanhAdd", {{13, 1, 65}, {1, 31, 65}},
                 [](const std::vector<Tensor>& t) {
                   return Mul(Sigmoid(t[0]), Tanh(Add(t[0], t[1])));
                 });
}

// End-to-end: the full model's loss and every parameter gradient must be
// bit-identical at 1 and 4 threads (eval mode, so Dropout does not consume
// rng state).
TEST_F(ParallelDeterminismTest, FullModelForwardBackwardParity) {
  data::SyntheticTrafficOptions options;
  options.network.num_nodes = 8;
  options.network.neighbors = 3;
  options.num_steps = 256;
  options.seed = 9;
  const data::SyntheticTraffic traffic =
      data::GenerateSyntheticTraffic(options);
  data::StandardScaler scaler;
  scaler.Fit(traffic.dataset.values, 180, /*mask_zeros=*/true);
  const auto splits = data::MakeChronologicalSplits(256, 12, 12, 0.7f, 0.1f);
  data::WindowDataLoader loader(&traffic.dataset, &scaler, splits.train, 12,
                                12, 4);
  const data::Batch batch = loader.GetBatch(0);

  core::D2StgnnConfig config;
  config.num_nodes = 8;
  config.hidden_dim = 8;
  config.embed_dim = 4;
  config.num_layers = 2;
  config.num_heads = 2;
  config.k_s = 2;
  config.k_t = 2;
  Rng rng(7);
  core::D2Stgnn model(config, traffic.dataset.network.adjacency, rng);
  model.SetTraining(false);

  auto run = [&](int threads) {
    SetNumThreads(threads);
    model.ZeroGrad();
    Tensor loss = metrics::MaskedMaeLoss(
        scaler.InverseTransform(model.Forward(batch)), batch.y);
    loss.Backward();
    RunResult result;
    result.out = loss.Data();
    for (const Tensor& p : model.Parameters()) {
      result.grads.push_back(p.GradData());
    }
    return result;
  };

  const RunResult at1 = run(1);
  const RunResult at4 = run(4);
  ExpectBitwiseEqual(at1.out, at4.out, "model loss");
  ASSERT_EQ(at1.grads.size(), at4.grads.size());
  for (size_t i = 0; i < at1.grads.size(); ++i) {
    ExpectBitwiseEqual(at1.grads[i], at4.grads[i], "model grad");
  }
}

// Batch assembly routed through ParallelFor must match serial GetBatch.
TEST_F(ParallelDeterminismTest, AssembleAllBatchesMatchesSerial) {
  data::SyntheticTrafficOptions options;
  options.network.num_nodes = 6;
  options.num_steps = 300;
  options.seed = 3;
  const data::SyntheticTraffic traffic =
      data::GenerateSyntheticTraffic(options);
  data::StandardScaler scaler;
  scaler.Fit(traffic.dataset.values, 210, /*mask_zeros=*/true);
  const auto splits = data::MakeChronologicalSplits(300, 12, 12, 0.7f, 0.1f);
  data::WindowDataLoader loader(&traffic.dataset, &scaler, splits.train, 12,
                                12, 8);

  SetNumThreads(4);
  const std::vector<data::Batch> parallel = loader.AssembleAllBatches();
  ASSERT_EQ(static_cast<int64_t>(parallel.size()), loader.NumBatches());
  for (int64_t b = 0; b < loader.NumBatches(); ++b) {
    const data::Batch serial = loader.GetBatch(b);
    ExpectBitwiseEqual(serial.x.Data(), parallel[static_cast<size_t>(b)].x.Data(),
                       "batch x");
    ExpectBitwiseEqual(serial.y.Data(), parallel[static_cast<size_t>(b)].y.Data(),
                       "batch y");
  }
}

// The refactored kernels must still agree with finite differences while the
// pool is active.
TEST_F(ParallelDeterminismTest, GradCheckWithActivePool) {
  SetNumThreads(4);
  Rng rng(5);
  Tensor a = Tensor::Randn({6, 7}, rng).SetRequiresGrad(true);
  Tensor b = Tensor::Randn({7, 5}, rng).SetRequiresGrad(true);
  Tensor c = Tensor::Randn({6, 5}, rng).SetRequiresGrad(true);
  auto loss = [&]() {
    return Sum(Mul(Softmax(MatMul(a, b), -1), Sigmoid(c)));
  };
  const auto result = CheckGradients(loss, {a, b, c}, rng, 1e-2f, 3e-2f, 12);
  EXPECT_TRUE(result.ok) << "rel err " << result.max_relative_error;
}

}  // namespace
}  // namespace d2stgnn
