// Numerics sentinel tests: with checking enabled, a NaN/Inf produced
// anywhere in the graph is reported with the offending op, phase, and tape
// provenance — in abort mode before the poison propagates, in warn mode as
// a recorded diagnostic. The default (off) path must not alter behavior.

#include "tensor/checker.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "data/synthetic_traffic.h"
#include "nn/linear.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace d2stgnn {
namespace {

// Every test restores the default mode: the sentinel is process state.
class CheckerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetNumThreads(1);
    ResetNumericsViolations();
  }
  void TearDown() override {
    SetCheckMode(CheckMode::kOff);
    ResetNumericsViolations();
  }
};

TEST_F(CheckerTest, OffModeLetsNonFiniteValuesThrough) {
  SetCheckMode(CheckMode::kOff);
  const Tensor y = Log(Tensor({2}, {-1.0f, 2.0f}));
  EXPECT_TRUE(std::isnan(y.At(0)));
  EXPECT_EQ(NumericsViolationCount(), 0);
}

TEST_F(CheckerTest, AbortModeDiesNamingOpAndForwardPhase) {
  SetCheckMode(CheckMode::kAbort);
  Tensor x({2}, {-1.0f, 2.0f});
  EXPECT_DEATH(Log(x),
               "numerics sentinel: nan.*\\[phase=forward\\] \\[op=Log\\]");
}

TEST_F(CheckerTest, AbortModeDiesNamingOpAndBackwardPhase) {
  SetCheckMode(CheckMode::kAbort);
  // sqrt-like pole: forward pow(0, 0.5) = 0 is finite, but the gradient
  // 0.5 * 0^-0.5 is inf — only the backward pass can catch it.
  Tensor x = Tensor({1}, {0.0f}).SetRequiresGrad(true);
  Tensor loss = Sum(PowScalar(x, 0.5f));
  EXPECT_DEATH(loss.Backward(),
               "numerics sentinel: inf.*\\[phase=backward\\] "
               "\\[op=PowScalar\\]");
}

TEST_F(CheckerTest, WarnModeRecordsDiagnosticAndContinues) {
  SetCheckMode(CheckMode::kWarn);
  const Tensor y = Log(Tensor({2}, {-1.0f, 2.0f}));
  EXPECT_TRUE(std::isnan(y.At(0)));  // execution continued
  EXPECT_GE(NumericsViolationCount(), 1);
  const std::string diagnostic = LastNumericsDiagnostic();
  EXPECT_NE(diagnostic.find("[op=Log]"), std::string::npos) << diagnostic;
  EXPECT_NE(diagnostic.find("[phase=forward]"), std::string::npos)
      << diagnostic;
  EXPECT_NE(diagnostic.find("shape [2]"), std::string::npos) << diagnostic;
}

TEST_F(CheckerTest, DiagnosticIncludesTapeProvenanceChain) {
  SetCheckMode(CheckMode::kWarn);
  Tensor x = Tensor({2}, {1.0f, 2.0f}).SetRequiresGrad(true);
  const Tensor y = Log(Neg(x));  // Neg records as MulScalar
  EXPECT_TRUE(std::isnan(y.At(0)));
  const std::string diagnostic = LastNumericsDiagnostic();
  EXPECT_NE(diagnostic.find("tape: Log <- MulScalar"), std::string::npos)
      << diagnostic;
}

TEST_F(CheckerTest, ScopedContextAppearsInDiagnostic) {
  SetCheckMode(CheckMode::kWarn);
  {
    ScopedCheckContext context("unit-test step 17");
    Log(Tensor({1}, {-3.0f}));
  }
  EXPECT_NE(LastNumericsDiagnostic().find("context: unit-test step 17"),
            std::string::npos);
  // Popped contexts no longer annotate new diagnostics.
  Log(Tensor({1}, {-3.0f}));
  EXPECT_EQ(LastNumericsDiagnostic().find("unit-test step 17"),
            std::string::npos);
}

TEST_F(CheckerTest, TapeProvenanceOfLeafIsLeaf) {
  Tensor x = Tensor::Ones({2});
  EXPECT_EQ(TapeProvenance(x), "(leaf)");
}

// --- Trainer integration: a poisoned parameter must abort the training
// step with a diagnostic naming the op, the phase, and the step. ---

class PoisonedModel : public train::ForecastingModel {
 public:
  PoisonedModel(int64_t num_nodes, int64_t horizon, Rng& rng)
      : ForecastingModel("poisoned"),
        num_nodes_(num_nodes),
        horizon_(horizon),
        proj_(data::kInputFeatures, horizon, rng) {
    RegisterChild(&proj_);
    // Inject the NaN a real bug would produce (bad init, lr blow-up). The
    // copied handle shares storage with the layer's weight.
    Tensor weight = proj_.weight();
    weight.Data()[0] = std::nanf("");
  }

  Tensor Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size;
    const Tensor last = Reshape(
        Slice(batch.x, 1, batch.input_len - 1, batch.input_len),
        {b, num_nodes_, data::kInputFeatures});
    Tensor out = Permute(proj_.Forward(last), {0, 2, 1});
    return Reshape(out, {b, horizon_, num_nodes_, 1});
  }

  int64_t horizon() const override { return horizon_; }

 private:
  int64_t num_nodes_;
  int64_t horizon_;
  nn::Linear proj_;
};

TEST_F(CheckerTest, TrainingStepWithInjectedNanAbortsWithDiagnostic) {
  SetCheckMode(CheckMode::kAbort);
  data::SyntheticTrafficOptions options;
  options.network.num_nodes = 6;
  options.num_steps = 120;
  options.seed = 5;
  data::SyntheticTraffic traffic = data::GenerateSyntheticTraffic(options);
  data::StandardScaler scaler;
  scaler.Fit(traffic.dataset.values, 90, true);
  const auto splits = data::MakeChronologicalSplits(120, 12, 12, 0.7f, 0.1f);
  data::WindowDataLoader loader(&traffic.dataset, &scaler, splits.train, 12,
                                12, 8);

  Rng rng(3);
  PoisonedModel model(6, 12, rng);
  train::TrainerOptions trainer_options;
  trainer_options.epochs = 1;
  trainer_options.verbose = false;
  train::Trainer trainer(&model, &scaler, trainer_options);
  EXPECT_DEATH(
      trainer.Fit(&loader, nullptr),
      "numerics sentinel: nan.*\\[phase=forward\\].*context: training step: "
      "epoch 0 batch 0");
}

}  // namespace
}  // namespace d2stgnn
