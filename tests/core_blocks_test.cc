#include "core/decoupled_layer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/dynamic_graph.h"
#include "core/estimation_gate.h"
#include "graph/localized_transition.h"
#include "graph/sensor_graph.h"
#include "graph/transition.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace d2stgnn::core {
namespace {

constexpr int64_t kBatch = 2;
constexpr int64_t kSteps = 6;
constexpr int64_t kNodes = 5;
constexpr int64_t kDim = 8;
constexpr int64_t kEmbed = 4;

struct Fixture {
  Rng rng{17};
  Tensor x = Tensor::Randn({kBatch, kSteps, kNodes, kDim}, rng);
  Tensor t_day = Tensor::Randn({kBatch, kSteps, kEmbed}, rng);
  Tensor t_week = Tensor::Randn({kBatch, kSteps, kEmbed}, rng);
  Tensor e_u = Tensor::Randn({kNodes, kEmbed}, rng);
  Tensor e_d = Tensor::Randn({kNodes, kEmbed}, rng);
  Tensor p;
  std::vector<std::vector<Tensor>> supports;

  Fixture() {
    graph::SensorNetworkOptions options;
    options.num_nodes = kNodes;
    options.neighbors = 2;
    const auto net = graph::BuildRandomSensorNetwork(options, rng);
    p = graph::ForwardTransition(net.adjacency);
    for (int support = 0; support < 2; ++support) {
      std::vector<Tensor> localized;
      for (const Tensor& power : graph::TransitionPowers(p, 2)) {
        localized.push_back(graph::LocalizedTransition(power, 2));
      }
      supports.push_back(std::move(localized));
    }
  }
};

TEST(EstimationGateTest, OutputInGateRangeOfInput) {
  Fixture f;
  EstimationGate gate(kEmbed, kDim, f.rng);
  NoGradGuard no_grad;
  const Tensor gated =
      gate.Forward(f.t_day, f.t_week, f.e_u, f.e_d, f.x);
  ASSERT_EQ(gated.shape(), f.x.shape());
  // Gate in (0, 1): |gated| <= |x| elementwise and sign preserved.
  for (int64_t i = 0; i < f.x.numel(); ++i) {
    EXPECT_LE(std::fabs(gated.At(i)), std::fabs(f.x.At(i)) + 1e-6f);
    if (std::fabs(f.x.At(i)) > 1e-6f) {
      EXPECT_GE(gated.At(i) * f.x.At(i), 0.0f);
    }
  }
}

TEST(EstimationGateTest, GateSharedAcrossChannels) {
  // Lambda is [.., 1]: the ratio gated/x must be identical for every
  // channel of the same (b, t, i).
  Fixture f;
  EstimationGate gate(kEmbed, kDim, f.rng);
  NoGradGuard no_grad;
  const Tensor gated =
      gate.Forward(f.t_day, f.t_week, f.e_u, f.e_d, f.x);
  const float ratio0 = gated.At({0, 0, 0, 0}) / f.x.At({0, 0, 0, 0});
  for (int64_t c = 1; c < kDim; ++c) {
    const float ratio = gated.At({0, 0, 0, c}) / f.x.At({0, 0, 0, c});
    EXPECT_NEAR(ratio, ratio0, 1e-4f);
  }
}

TEST(EstimationGateTest, GradientsReachEmbeddings) {
  Fixture f;
  f.e_u.SetRequiresGrad(true);
  EstimationGate gate(kEmbed, kDim, f.rng);
  Sum(gate.Forward(f.t_day, f.t_week, f.e_u, f.e_d, f.x)).Backward();
  double mass = 0.0;
  for (float g : f.e_u.GradData()) mass += std::fabs(g);
  EXPECT_GT(mass, 0.0);
}

TEST(DiffusionBlockTest, OutputShapes) {
  Fixture f;
  DiffusionBlock block(kDim, /*k_s=*/2, /*k_t=*/2, /*num_supports=*/2,
                       /*forecast_horizon=*/4, /*autoregressive=*/true,
                       f.rng);
  const BlockOutput out = block.Forward(f.x, f.supports);
  EXPECT_EQ(out.hidden_sequence.shape(),
            (Shape{kBatch, kSteps, kNodes, kDim}));
  EXPECT_EQ(out.hidden_forecast.shape(), (Shape{kBatch, 4, kNodes, kDim}));
  EXPECT_EQ(out.backcast.shape(), (Shape{kBatch, kSteps, kNodes, kDim}));
}

TEST(DiffusionBlockTest, SelfSignalDoesNotDiffuse) {
  // The localized transition masks self-loops (Eq. 4): perturbing node j's
  // input must not change H_t at node j through the *spatial* path when the
  // graph has no j->j two-hop cycle... Instead verify the direct property:
  // with an identity transition matrix, the localized conv output is zero
  // (everything is masked).
  Fixture f;
  DiffusionBlock block(kDim, 1, 1, 1, 2, true, f.rng);
  std::vector<std::vector<Tensor>> identity_support = {
      {graph::LocalizedTransition(Tensor::Eye(kNodes), 1)}};
  NoGradGuard no_grad;
  const BlockOutput out = block.Forward(f.x, identity_support);
  for (float v : out.hidden_sequence.Data()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(DiffusionBlockTest, DirectForecastVariantShapes) {
  Fixture f;
  DiffusionBlock block(kDim, 2, 2, 2, 4, /*autoregressive=*/false, f.rng);
  const BlockOutput out = block.Forward(f.x, f.supports);
  EXPECT_EQ(out.hidden_forecast.shape(), (Shape{kBatch, 4, kNodes, kDim}));
}

TEST(DiffusionBlockTest, AcceptsBatchedDynamicSupports) {
  Fixture f;
  DiffusionBlock block(kDim, 2, 2, 1, 4, true, f.rng);
  Tensor dynamic = BroadcastTo(Unsqueeze(f.p, 0), {kBatch, kNodes, kNodes});
  std::vector<std::vector<Tensor>> supports;
  std::vector<Tensor> localized;
  for (const Tensor& power : graph::TransitionPowers(dynamic, 2)) {
    localized.push_back(graph::LocalizedTransition(power, 2));
  }
  supports.push_back(std::move(localized));
  const BlockOutput out = block.Forward(f.x, supports);
  EXPECT_EQ(out.hidden_sequence.shape(),
            (Shape{kBatch, kSteps, kNodes, kDim}));
}

TEST(InherentBlockTest, OutputShapesAllVariants) {
  Fixture f;
  for (const bool use_gru : {true, false}) {
    for (const bool use_msa : {true, false}) {
      for (const bool ar : {true, false}) {
        InherentBlock block(kDim, 2, 4, kSteps, use_gru, use_msa, ar, f.rng);
        const BlockOutput out = block.Forward(f.x);
        EXPECT_EQ(out.hidden_sequence.shape(),
                  (Shape{kBatch, kSteps, kNodes, kDim}));
        EXPECT_EQ(out.hidden_forecast.shape(),
                  (Shape{kBatch, 4, kNodes, kDim}));
        EXPECT_EQ(out.backcast.shape(),
                  (Shape{kBatch, kSteps, kNodes, kDim}));
      }
    }
  }
}

TEST(InherentBlockTest, NodesAreIndependent) {
  // The inherent model must treat every node independently (Sec. 5.2):
  // changing node 3's input must not change node 0's hidden state.
  Fixture f;
  InherentBlock block(kDim, 2, 4, kSteps, true, true, true, f.rng);
  NoGradGuard no_grad;
  const BlockOutput base = block.Forward(f.x);
  Tensor perturbed = f.x.Clone();
  for (int64_t t = 0; t < kSteps; ++t) {
    for (int64_t c = 0; c < kDim; ++c) {
      const std::vector<int64_t> strides = RowMajorStrides(perturbed.shape());
      perturbed.Data()[static_cast<size_t>(
          0 * strides[0] + t * strides[1] + 3 * strides[2] + c)] += 5.0f;
    }
  }
  const BlockOutput out = block.Forward(perturbed);
  for (int64_t t = 0; t < kSteps; ++t) {
    for (int64_t c = 0; c < kDim; ++c) {
      EXPECT_NEAR(out.hidden_sequence.At({0, t, 0, c}),
                  base.hidden_sequence.At({0, t, 0, c}), 1e-5f);
    }
  }
}

TEST(DynamicGraphTest, ShapesAndStaticSupportMask) {
  Fixture f;
  DynamicGraphLearner learner(kSteps, kDim, kEmbed, f.rng);
  const Tensor day = Tensor::Randn({kBatch, kEmbed}, f.rng);
  const Tensor week = Tensor::Randn({kBatch, kEmbed}, f.rng);
  NoGradGuard no_grad;
  const auto [pf, pb] =
      learner.Forward(f.x, day, week, f.e_u, f.e_d, f.p,
                      graph::BackwardTransition(f.p));
  EXPECT_EQ(pf.shape(), (Shape{kBatch, kNodes, kNodes}));
  EXPECT_EQ(pb.shape(), (Shape{kBatch, kNodes, kNodes}));
  // Eq. 14 masks the static transition: zero static entries stay zero.
  for (int64_t b = 0; b < kBatch; ++b) {
    for (int64_t i = 0; i < kNodes; ++i) {
      for (int64_t j = 0; j < kNodes; ++j) {
        if (f.p.At({i, j}) == 0.0f) {
          EXPECT_FLOAT_EQ(pf.At({b, i, j}), 0.0f);
        } else {
          EXPECT_LE(pf.At({b, i, j}), f.p.At({i, j}) + 1e-6f);
        }
      }
    }
  }
}

TEST(DynamicGraphTest, DependsOnInputWindow) {
  Fixture f;
  DynamicGraphLearner learner(kSteps, kDim, kEmbed, f.rng);
  const Tensor day = Tensor::Randn({kBatch, kEmbed}, f.rng);
  const Tensor week = Tensor::Randn({kBatch, kEmbed}, f.rng);
  NoGradGuard no_grad;
  const Tensor pb_static = graph::BackwardTransition(f.p);
  const auto [pf1, pb1] =
      learner.Forward(f.x, day, week, f.e_u, f.e_d, f.p, pb_static);
  const Tensor other = Tensor::Randn({kBatch, kSteps, kNodes, kDim}, f.rng);
  const auto [pf2, pb2] =
      learner.Forward(other, day, week, f.e_u, f.e_d, f.p, pb_static);
  double diff = 0.0;
  for (int64_t i = 0; i < pf1.numel(); ++i) {
    diff += std::fabs(pf1.At(i) - pf2.At(i));
  }
  EXPECT_GT(diff, 1e-3) << "dynamic graph ignored the traffic features";
}

TEST(DecoupledLayerTest, ResidualDecompositionSubtractsBackcasts) {
  // With residual links the layer output is x - backcast_dif - backcast_inh
  // (Eqs. 1-2). Verify by recomputing from the block outputs.
  Fixture f;
  DecoupledLayerConfig config;
  config.hidden_dim = kDim;
  config.embed_dim = kEmbed;
  config.k_s = 2;
  config.k_t = 2;
  config.num_heads = 2;
  config.input_len = kSteps;
  config.horizon = 4;
  config.num_supports = 2;
  DecoupledLayer layer(config, f.rng);
  NoGradGuard no_grad;
  const LayerOutput out =
      layer.Forward(f.x, f.t_day, f.t_week, f.e_u, f.e_d, f.supports);
  EXPECT_EQ(out.next_input.shape(), f.x.shape());
  EXPECT_EQ(out.forecast_dif.shape(), (Shape{kBatch, 4, kNodes, kDim}));
  EXPECT_EQ(out.forecast_inh.shape(), (Shape{kBatch, 4, kNodes, kDim}));
}

TEST(DecoupledLayerTest, CoupledVariantIgnoresGateAndResiduals) {
  Fixture f;
  DecoupledLayerConfig config;
  config.hidden_dim = kDim;
  config.embed_dim = kEmbed;
  config.k_s = 2;
  config.k_t = 2;
  config.num_heads = 2;
  config.input_len = kSteps;
  config.horizon = 4;
  config.num_supports = 2;
  config.use_decouple = false;
  DecoupledLayer layer(config, f.rng);
  NoGradGuard no_grad;
  const LayerOutput out =
      layer.Forward(f.x, f.t_day, f.t_week, f.e_u, f.e_d, f.supports);
  EXPECT_EQ(out.next_input.shape(), f.x.shape());
}

TEST(DecoupledLayerTest, SwitchVariantRuns) {
  Fixture f;
  DecoupledLayerConfig config;
  config.hidden_dim = kDim;
  config.embed_dim = kEmbed;
  config.k_s = 2;
  config.k_t = 2;
  config.num_heads = 2;
  config.input_len = kSteps;
  config.horizon = 4;
  config.num_supports = 2;
  config.inherent_first = true;
  DecoupledLayer layer(config, f.rng);
  NoGradGuard no_grad;
  const LayerOutput out =
      layer.Forward(f.x, f.t_day, f.t_week, f.e_u, f.e_d, f.supports);
  EXPECT_EQ(out.next_input.shape(), f.x.shape());
}

TEST(DiffusionBlockTest, GradCheckThroughConvolution) {
  // End-to-end finite-difference check through the localized convolution.
  Rng rng(23);
  Tensor x = Tensor::Randn({1, 3, 4, 4}, rng).SetRequiresGrad(true);
  graph::SensorNetworkOptions options;
  options.num_nodes = 4;
  options.neighbors = 2;
  const auto net = graph::BuildRandomSensorNetwork(options, rng);
  const Tensor p = graph::ForwardTransition(net.adjacency);
  std::vector<std::vector<Tensor>> supports = {
      {graph::LocalizedTransition(p, 2)}};
  DiffusionBlock block(4, 1, 2, 1, 2, true, rng);
  auto loss = [&] {
    const BlockOutput out = block.Forward(x, supports);
    return Add(Sum(Abs(out.hidden_forecast)), Sum(Abs(out.backcast)));
  };
  std::vector<Tensor> params = {x};
  auto result = CheckGradients(loss, params, rng, 1e-2f, 3e-2f, 12);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

}  // namespace
}  // namespace d2stgnn::core
