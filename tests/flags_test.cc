// Tests of the shared argv parser (src/common/flags.h): typed flags,
// positionals, strict error reporting, and the repeatable-list flag the
// experiment CLI's --set rides on.

#include "common/flags.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace d2stgnn {
namespace {

// Builds argv from an initializer list (argv[0] is the program name).
std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return argv;
}

TEST(FlagParserTest, ParsesTypedFlagsBothSyntaxes) {
  std::string name = "default";
  int64_t count = 1;
  double rate = 0.5;
  bool verbose = false;
  FlagParser flags("prog", "");
  flags.AddString("name", &name, "");
  flags.AddInt("count", &count, "");
  flags.AddDouble("rate", &rate, "");
  flags.AddBool("verbose", &verbose, "");

  const auto argv =
      Argv({"--name", "abc", "--count=7", "--rate", "2.25", "--verbose"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()))
      << flags.error();
  EXPECT_EQ(name, "abc");
  EXPECT_EQ(count, 7);
  EXPECT_DOUBLE_EQ(rate, 2.25);
  EXPECT_TRUE(verbose);
}

TEST(FlagParserTest, DefaultsSurviveWhenFlagsAbsent) {
  std::string name = "default";
  int64_t count = 42;
  FlagParser flags("prog", "");
  flags.AddString("name", &name, "");
  flags.AddInt("count", &count, "");
  const auto argv = Argv({});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(name, "default");
  EXPECT_EQ(count, 42);
}

TEST(FlagParserTest, UnknownFlagFails) {
  FlagParser flags("prog", "");
  const auto argv = Argv({"--nope"});
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(flags.error().find("unknown flag --nope"), std::string::npos)
      << flags.error();
}

TEST(FlagParserTest, MissingValueFails) {
  std::string name;
  FlagParser flags("prog", "");
  flags.AddString("name", &name, "");
  const auto argv = Argv({"--name"});
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(flags.error().find("requires a value"), std::string::npos)
      << flags.error();
}

TEST(FlagParserTest, MalformedNumberFails) {
  int64_t count = 0;
  FlagParser flags("prog", "");
  flags.AddInt("count", &count, "");
  const auto argv = Argv({"--count", "12x"});
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(flags.error().find("invalid integer '12x'"), std::string::npos)
      << flags.error();
}

TEST(FlagParserTest, ChoiceRejectsValuesOutsideTheList) {
  std::string mode = "both";
  FlagParser flags("prog", "");
  flags.AddChoice("mode", &mode, {"eager", "plan", "both"}, "");

  auto argv = Argv({"--mode", "plan"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(mode, "plan");

  argv = Argv({"--mode", "warp"});
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(flags.error().find("eager|plan|both"), std::string::npos)
      << flags.error();
}

TEST(FlagParserTest, StringListAppendsPerOccurrence) {
  std::vector<std::string> sets;
  FlagParser flags("prog", "");
  flags.AddStringList("set", &sets, "");
  const auto argv =
      Argv({"--set", "trainer.epochs=2", "--set=data.scale=0.1"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()))
      << flags.error();
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], "trainer.epochs=2");
  EXPECT_EQ(sets[1], "data.scale=0.1");
}

TEST(FlagParserTest, PositionalsFillInOrderThenTrailing) {
  double rate = 0.0;
  int64_t producers = 0;
  std::vector<std::string> rest;
  FlagParser flags("prog", "");
  flags.AddPositionalDouble("rate", &rate, "");
  flags.AddPositionalInt("producers", &producers, "");
  flags.AddTrailing("spec", &rest, "");
  const auto argv = Argv({"12.5", "4", "a.spec", "b.spec"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()))
      << flags.error();
  EXPECT_DOUBLE_EQ(rate, 12.5);
  EXPECT_EQ(producers, 4);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0], "a.spec");
  EXPECT_EQ(rest[1], "b.spec");
}

TEST(FlagParserTest, UnexpectedPositionalFailsWithoutTrailing) {
  FlagParser flags("prog", "");
  const auto argv = Argv({"stray"});
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(flags.error().find("unexpected argument 'stray'"),
            std::string::npos)
      << flags.error();
}

TEST(FlagParserTest, BoolFlagDoesNotEatNonBooleanPositional) {
  bool verbose = false;
  std::string spec;
  FlagParser flags("prog", "");
  flags.AddBool("verbose", &verbose, "");
  flags.AddPositionalString("spec", &spec, "");
  const auto argv = Argv({"--verbose", "a.spec"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()))
      << flags.error();
  EXPECT_TRUE(verbose);
  EXPECT_EQ(spec, "a.spec");
}

TEST(FlagParserTest, DoubleDashEndsFlagParsing) {
  std::vector<std::string> rest;
  FlagParser flags("prog", "");
  flags.AddTrailing("arg", &rest, "");
  const auto argv = Argv({"--", "--not-a-flag"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()))
      << flags.error();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], "--not-a-flag");
}

TEST(FlagParserTest, HelpSetsFlagAndUsageNamesEverything) {
  std::string mode;
  FlagParser flags("prog", "summary line");
  flags.AddChoice("mode", &mode, {"a", "b"}, "pick one");
  const auto argv = Argv({"--help"});
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(flags.help_requested());
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("summary line"), std::string::npos);
  EXPECT_NE(usage.find("--mode=a|b"), std::string::npos);
}

}  // namespace
}  // namespace d2stgnn
