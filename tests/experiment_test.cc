// Tests of the declarative experiment harness (src/experiment/): the spec
// format (parse, round-trip, line-numbered rejection of unknown and
// ill-typed keys), the JSON value type beneath the sinks and gates, the
// registry of named axes (every listed model must resolve and build), the
// MetricsSink schema, the RegressionGate's pass/fail/diff behavior, matrix
// expansion counts, and a small end-to-end RunSpec.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "common/json.h"
#include "common/rng.h"
#include "data/synthetic_traffic.h"
#include "experiment/metrics_sink.h"
#include "experiment/registry.h"
#include "experiment/regression_gate.h"
#include "experiment/runner.h"
#include "experiment/spec.h"
#include "train/trainer.h"

namespace d2stgnn::experiment {
namespace {

// ---------------------------------------------------------------------------
// Spec format

TEST(SpecTest, ParsesSectionsKeysAndComments) {
  const std::string text =
      "# full-line comment\n"
      "[experiment]\n"
      "name = demo  # trailing comment\n"
      "kind = training\n"
      "\n"
      "[data]\n"
      "datasets = METR-LA, PEMS08\n"
      "scale = 0.05\n";
  Spec spec;
  std::string error;
  ASSERT_TRUE(Spec::ParseText(text, &spec, &error)) << error;
  EXPECT_EQ(spec.GetString("experiment", "name", ""), "demo");
  EXPECT_EQ(spec.GetString("experiment", "kind", ""), "training");
  EXPECT_DOUBLE_EQ(spec.GetDouble("data", "scale", 0.0), 0.05);
  const std::vector<std::string> datasets = spec.GetList("data", "datasets");
  ASSERT_EQ(datasets.size(), 2u);
  EXPECT_EQ(datasets[0], "METR-LA");
  EXPECT_EQ(datasets[1], "PEMS08");
  EXPECT_EQ(spec.LineOf("data", "scale"), 8);
  EXPECT_EQ(spec.Validate(), "");  // everything consumed, no type errors
}

TEST(SpecTest, RoundTripsThroughToText) {
  const std::string text =
      "[experiment]\n"
      "name = rt\n"
      "[serving]\n"
      "threads = 1, 2, 4\n"
      "iters = 40\n";
  Spec spec;
  std::string error;
  ASSERT_TRUE(Spec::ParseText(text, &spec, &error)) << error;
  Spec reparsed;
  ASSERT_TRUE(Spec::ParseText(spec.ToText(), &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.GetString("experiment", "name", ""), "rt");
  const std::vector<int64_t> threads = reparsed.GetIntList("serving", "threads");
  ASSERT_EQ(threads.size(), 3u);
  EXPECT_EQ(threads[2], 4);
  EXPECT_EQ(reparsed.GetInt("serving", "iters", 0), 40);
  EXPECT_EQ(spec.ToText(), reparsed.ToText());
}

TEST(SpecTest, ParseErrorsCarryLineNumbers) {
  Spec spec;
  std::string error;
  EXPECT_FALSE(Spec::ParseText("[a]\nx = 1\nnonsense\n", &spec, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;

  EXPECT_FALSE(Spec::ParseText("x = 1\n", &spec, &error));
  EXPECT_NE(error.find("key before any [section]"), std::string::npos)
      << error;

  EXPECT_FALSE(Spec::ParseText("[a\n", &spec, &error));
  EXPECT_NE(error.find("unterminated section header"), std::string::npos)
      << error;

  EXPECT_FALSE(Spec::ParseText("[a]\nx = 1\nx = 2\n", &spec, &error));
  EXPECT_NE(error.find("duplicate key 'x'"), std::string::npos) << error;
  EXPECT_NE(error.find("first defined on line 2"), std::string::npos)
      << error;
}

TEST(SpecTest, ValidateReportsUnconsumedKeysWithLineNumbers) {
  Spec spec;
  std::string error;
  ASSERT_TRUE(
      Spec::ParseText("[a]\nknown = 1\ntypo = 2\n", &spec, &error));
  (void)spec.GetInt("a", "known", 0);
  const std::string report = spec.Validate();
  EXPECT_NE(report.find("line 3: unknown key 'typo' in [a]"),
            std::string::npos)
      << report;
  EXPECT_EQ(report.find("'known'"), std::string::npos) << report;
}

TEST(SpecTest, ValidateReportsTypeErrors) {
  Spec spec;
  std::string error;
  ASSERT_TRUE(Spec::ParseText("[a]\nn = abc\n", &spec, &error));
  EXPECT_EQ(spec.GetInt("a", "n", 7), 7);  // fallback on type error
  const std::string report = spec.Validate();
  EXPECT_NE(report.find("line 2"), std::string::npos) << report;
  EXPECT_NE(report.find("not an integer"), std::string::npos) << report;
}

TEST(SpecTest, SetOverridesAndInserts) {
  Spec spec;
  std::string error;
  ASSERT_TRUE(Spec::ParseText("[t]\nepochs = 10\n", &spec, &error));
  spec.Set("t", "epochs", "2");          // override
  spec.Set("data", "scale", "0.1");      // insert into a new section
  EXPECT_EQ(spec.GetInt("t", "epochs", 0), 2);
  EXPECT_DOUBLE_EQ(spec.GetDouble("data", "scale", 0.0), 0.1);
  EXPECT_EQ(spec.Validate(), "");
}

// ---------------------------------------------------------------------------
// JSON value type

TEST(JsonTest, ParsesAndDumpsNestedDocuments) {
  const std::string text =
      "{\"a\": 1, \"b\": [true, null, 2.5], \"c\": {\"d\": \"x\"}}";
  json::Value v;
  std::string error;
  ASSERT_TRUE(json::Value::Parse(text, &v, &error)) << error;
  EXPECT_EQ(v.Get("a").AsInt(-1), 1);
  EXPECT_TRUE(v.Get("b").at(0).AsBool());
  EXPECT_TRUE(v.Get("b").at(1).is_null());
  EXPECT_DOUBLE_EQ(v.Get("b").at(2).AsDouble(), 2.5);
  EXPECT_EQ(v.Get("c").Get("d").AsString(), "x");

  json::Value reparsed;
  ASSERT_TRUE(json::Value::Parse(v.Dump(), &reparsed, &error)) << error;
  EXPECT_EQ(v.Dump(), reparsed.Dump());
}

TEST(JsonTest, RejectsMalformedInput) {
  json::Value v;
  std::string error;
  EXPECT_FALSE(json::Value::Parse("{\"a\": }", &v, &error));
  EXPECT_FALSE(json::Value::Parse("[1, 2", &v, &error));
  EXPECT_FALSE(json::Value::Parse("{} trailing", &v, &error));
}

// ---------------------------------------------------------------------------
// Registry

TEST(RegistryTest, EveryListedModelResolves) {
  for (const ModelEntry& listed : AllModels()) {
    ModelEntry entry;
    std::string error;
    EXPECT_TRUE(ResolveModel(listed.name, &entry, &error)) << error;
    EXPECT_EQ(entry.name, listed.name);
  }
}

TEST(RegistryTest, EveryBaselineRegistryNameIsListed) {
  // The baselines --list surface and the experiment registry must agree.
  for (const std::string& name : baselines::AllModelNames()) {
    ModelEntry entry;
    std::string error;
    EXPECT_TRUE(ResolveModel(name, &entry, &error)) << name << ": " << error;
    EXPECT_EQ(entry.family, "deep");
  }
}

TEST(RegistryTest, EveryDeepAndAblationModelBuilds) {
  data::SyntheticTrafficOptions options;
  options.network.num_nodes = 6;
  options.num_steps = 64;
  const data::SyntheticTraffic traffic =
      data::GenerateSyntheticTraffic(options);
  baselines::ModelConfig config;
  config.num_nodes = 6;
  config.hidden_dim = 8;
  config.embed_dim = 4;
  for (const ModelEntry& entry : AllModels()) {
    Rng rng(1);
    std::string error;
    auto model = BuildModel(entry, config,
                            traffic.dataset.network.adjacency, rng, &error);
    if (entry.family == "statistical") {
      EXPECT_EQ(model, nullptr) << entry.name;
      EXPECT_FALSE(error.empty()) << entry.name;
    } else {
      ASSERT_NE(model, nullptr) << entry.name << ": " << error;
      EXPECT_GT(model->ParameterCount(), 0) << entry.name;
    }
  }
}

TEST(RegistryTest, UnknownNamesFailWithKnownNamesListed) {
  ModelEntry entry;
  std::string error;
  EXPECT_FALSE(ResolveModel("NO-SUCH", &entry, &error));
  EXPECT_NE(error.find("D2STGNN"), std::string::npos) << error;

  data::DatasetPreset preset;
  Spec spec;
  EXPECT_FALSE(ResolveDataset("NO-SUCH", 0.05f, spec, &preset, &error));
  EXPECT_NE(error.find("METR-LA"), std::string::npos) << error;

  EXPECT_FALSE(ResolveServingScenario("NO-SUCH", &error));
  EXPECT_NE(error.find("session-plan"), std::string::npos) << error;
}

TEST(RegistryTest, SyntheticDatasetReadsGeometryFromSpec) {
  Spec spec;
  std::string error;
  ASSERT_TRUE(Spec::ParseText(
      "[data]\nnum_nodes = 5\nnum_steps = 128\nseed = 9\n", &spec, &error));
  data::DatasetPreset preset;
  ASSERT_TRUE(ResolveDataset("synthetic", 0.05f, spec, &preset, &error))
      << error;
  EXPECT_EQ(preset.options.network.num_nodes, 5);
  EXPECT_EQ(preset.options.num_steps, 128);
  EXPECT_EQ(preset.options.seed, 9u);
}

TEST(RegistryTest, TrainerScenariosApply) {
  train::TrainerOptions standard;
  std::string error;
  ASSERT_TRUE(ApplyTrainerScenario("standard", &standard, &error)) << error;
  EXPECT_TRUE(standard.curriculum_learning);

  train::TrainerOptions no_curriculum;
  ASSERT_TRUE(ApplyTrainerScenario("no-curriculum", &no_curriculum, &error));
  EXPECT_FALSE(no_curriculum.curriculum_learning);

  train::TrainerOptions patient;
  ASSERT_TRUE(ApplyTrainerScenario("patient", &patient, &error));
  EXPECT_EQ(patient.patience, 2 * standard.patience);

  EXPECT_FALSE(ApplyTrainerScenario("NO-SUCH", &standard, &error));
}

// ---------------------------------------------------------------------------
// MetricsSink

TEST(MetricsSinkTest, EmitsSchemaVersionedEnvelope) {
  MetricsSink sink("demo", "training");
  json::Value record = json::Value::Object();
  record.Set("model", json::Value::Str("HA"));
  record.Set("h12_mae", json::Value::Number(4.5));
  sink.AddRecord(std::move(record));
  sink.SetSummary("best_model", json::Value::Str("HA"));

  const json::Value doc = sink.ToJson();
  EXPECT_EQ(doc.Get("schema_version").AsInt(-1), kMetricsSchemaVersion);
  EXPECT_EQ(doc.Get("experiment").AsString(), "demo");
  EXPECT_EQ(doc.Get("kind").AsString(), "training");
  ASSERT_EQ(doc.Get("records").size(), 1u);
  EXPECT_DOUBLE_EQ(doc.Get("records").at(0).Get("h12_mae").AsDouble(), 4.5);
  EXPECT_EQ(doc.Get("summary").Get("best_model").AsString(), "HA");

  const std::string table = sink.RenderTable();
  EXPECT_NE(table.find("model"), std::string::npos);
  EXPECT_NE(table.find("4.5000"), std::string::npos);
}

TEST(MetricsSinkTest, WritesParseableJson) {
  const std::string path = testing::TempDir() + "/sink_test.json";
  MetricsSink sink("demo", "serving");
  json::Value record = json::Value::Object();
  record.Set("threads", json::Value::Int(4));
  sink.AddRecord(std::move(record));
  std::string error;
  ASSERT_TRUE(sink.WriteJson(path, &error)) << error;
  json::Value doc;
  ASSERT_TRUE(json::Value::ParseFile(path, &doc, &error)) << error;
  EXPECT_EQ(doc.Get("records").at(0).Get("threads").AsInt(-1), 4);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// RegressionGate

json::Value GateResults() {
  MetricsSink sink("gate_demo", "training");
  json::Value record = json::Value::Object();
  record.Set("model", json::Value::Str("D2STGNN"));
  record.Set("h12_mae", json::Value::Number(5.0));
  record.Set("throughput_rps", json::Value::Number(800.0));
  sink.AddRecord(std::move(record));
  sink.SetSummary("plan_speedup", json::Value::Number(1.5));
  return sink.ToJson();
}

json::Value ParseJson(const std::string& text) {
  json::Value v;
  std::string error;
  EXPECT_TRUE(json::Value::Parse(text, &v, &error)) << error;
  return v;
}

TEST(RegressionGateTest, PassesWhenBoundsHold) {
  const json::Value baseline = ParseJson(
      "{\"schema_version\": 1, \"bounds\": ["
      "{\"match\": {\"model\": \"D2STGNN\"}, \"metric\": \"h12_mae\","
      " \"max\": 6.0},"
      "{\"match\": {\"model\": \"D2STGNN\"}, \"metric\": \"throughput_rps\","
      " \"min\": 100.0}],"
      "\"summary_bounds\": [{\"metric\": \"plan_speedup\", \"min\": 1.1}]}");
  GateReport report;
  std::string error;
  ASSERT_TRUE(CheckAgainstBaseline(GateResults(), baseline, &report, &error))
      << error;
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.bounds_checked, 3);
  EXPECT_NE(report.ToString().find("3 bounds OK"), std::string::npos);
}

TEST(RegressionGateTest, FailsWithReadableDiffOnViolations) {
  const json::Value baseline = ParseJson(
      "{\"schema_version\": 1, \"bounds\": ["
      "{\"match\": {\"model\": \"D2STGNN\"}, \"metric\": \"h12_mae\","
      " \"max\": 4.0},"
      "{\"match\": {\"model\": \"D2STGNN\"}, \"metric\": \"throughput_rps\","
      " \"min\": 1000.0}],"
      "\"summary_bounds\": [{\"metric\": \"plan_speedup\", \"min\": 2.0}]}");
  GateReport report;
  std::string error;
  ASSERT_TRUE(CheckAgainstBaseline(GateResults(), baseline, &report, &error))
      << error;
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.violations.size(), 3u);
  const std::string diff = report.ToString();
  EXPECT_NE(diff.find("regression gate FAILED"), std::string::npos) << diff;
  EXPECT_NE(diff.find("h12_mae = 5.0000 exceeds the baseline bound 4.0000"),
            std::string::npos)
      << diff;
  EXPECT_NE(diff.find("below the baseline floor"), std::string::npos) << diff;
  EXPECT_NE(diff.find("plan_speedup"), std::string::npos) << diff;
}

TEST(RegressionGateTest, BoundMatchingNoRecordsIsAViolation) {
  const json::Value baseline = ParseJson(
      "{\"schema_version\": 1, \"bounds\": ["
      "{\"match\": {\"model\": \"RENAMED\"}, \"metric\": \"h12_mae\","
      " \"max\": 6.0}]}");
  GateReport report;
  std::string error;
  ASSERT_TRUE(CheckAgainstBaseline(GateResults(), baseline, &report, &error));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.ToString().find("matched no records"), std::string::npos);
}

TEST(RegressionGateTest, StructurallyInvalidBaselinesAreErrors) {
  GateReport report;
  std::string error;
  EXPECT_FALSE(CheckAgainstBaseline(
      GateResults(), ParseJson("{\"schema_version\": 99, \"bounds\": []}"),
      &report, &error));
  EXPECT_NE(error.find("schema_version"), std::string::npos) << error;

  EXPECT_FALSE(CheckAgainstBaseline(GateResults(),
                                    ParseJson("{\"schema_version\": 1}"),
                                    &report, &error));

  EXPECT_FALSE(CheckAgainstBaseline(
      GateResults(),
      ParseJson("{\"schema_version\": 1, \"bounds\": [{\"metric\": \"x\"}]}"),
      &report, &error));
}

// ---------------------------------------------------------------------------
// Matrix expansion and RunSpec

Spec ParseSpec(const std::string& text) {
  Spec spec;
  std::string error;
  EXPECT_TRUE(Spec::ParseText(text, &spec, &error)) << error;
  return spec;
}

TEST(RunnerTest, TrainingMatrixIsDatasetsTimesModels) {
  const Spec spec = ParseSpec(
      "[experiment]\nname = m\nkind = training\n"
      "[data]\ndatasets = METR-LA, PEMS08\n"
      "[models]\nnames = HA, VAR, D2STGNN\n");
  std::vector<std::string> cells;
  std::string error;
  ASSERT_TRUE(ExpandMatrix(spec, &cells, &error)) << error;
  EXPECT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells.front(), "dataset=METR-LA model=HA");
  EXPECT_EQ(cells.back(), "dataset=PEMS08 model=D2STGNN");
}

TEST(RunnerTest, ServingMatrixCountsSessionAndServerCellsDifferently) {
  const Spec spec = ParseSpec(
      "[experiment]\nname = m\nkind = serving\n"
      "[serving]\nscenarios = session-plan, server\n"
      "threads = 1, 2\nbatch_sizes = 1, 4, 8\n");
  std::vector<std::string> cells;
  std::string error;
  ASSERT_TRUE(ExpandMatrix(spec, &cells, &error)) << error;
  // session-plan: 2 threads x 3 batches; server: 2 threads.
  EXPECT_EQ(cells.size(), 8u);
}

TEST(RunnerTest, OverloadScenarioExpandsToThreadsOnlyCells) {
  const Spec spec = ParseSpec(
      "[experiment]\nname = m\nkind = serving\n"
      "[serving]\nscenarios = session-plan, overload\n"
      "threads = 1, 2\nbatch_sizes = 1, 4\n");
  std::vector<std::string> cells;
  std::string error;
  ASSERT_TRUE(ExpandMatrix(spec, &cells, &error)) << error;
  // session-plan: 2 threads x 2 batches; overload: 2 threads.
  EXPECT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells.back(), "scenario=overload threads=2");
}

TEST(RunnerTest, FleetScenarioExpandsPerThreadWithTenantCount) {
  const Spec spec = ParseSpec(
      "[experiment]\nname = m\nkind = serving\n"
      "[serving]\nscenarios = fleet\nthreads = 1, 2\n"
      "[fleet]\nmodels = metr-la:gold, pems-bay:silver, city-syn:bronze\n"
      "hot_model = city-syn\n");
  std::vector<std::string> cells;
  std::string error;
  ASSERT_TRUE(ExpandMatrix(spec, &cells, &error)) << error;
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells.back(), "scenario=fleet threads=2 models=3");
}

TEST(RunnerTest, FleetExpansionRejectsBadTenantLists) {
  std::vector<std::string> cells;
  std::string error;
  // Unknown SLO class names fail at expansion (so --dry-run catches them)
  // with the known tiers spelled out.
  EXPECT_FALSE(ExpandMatrix(
      ParseSpec("[experiment]\nname = m\nkind = serving\n"
                "[serving]\nscenarios = fleet\nthreads = 1\n"
                "[fleet]\nmodels = metr-la:platinum\n"),
      &cells, &error));
  EXPECT_NE(error.find("platinum"), std::string::npos) << error;
  EXPECT_NE(error.find("gold"), std::string::npos) << error;

  // Duplicate tenant ids are refused (they would share one routing key).
  EXPECT_FALSE(ExpandMatrix(
      ParseSpec("[experiment]\nname = m\nkind = serving\n"
                "[serving]\nscenarios = fleet\nthreads = 1\n"
                "[fleet]\nmodels = metr-la:gold, metr-la:bronze\n"),
      &cells, &error));
  EXPECT_NE(error.find("twice"), std::string::npos) << error;

  // hot_model / reload_model must name a registered tenant.
  EXPECT_FALSE(ExpandMatrix(
      ParseSpec("[experiment]\nname = m\nkind = serving\n"
                "[serving]\nscenarios = fleet\nthreads = 1\n"
                "[fleet]\nmodels = metr-la:gold\nhot_model = nope\n"),
      &cells, &error));
  EXPECT_NE(error.find("nope"), std::string::npos) << error;
}

TEST(RunnerTest, OverloadAndChaosKeysAreConsumedByDryRun) {
  const Spec spec = ParseSpec(
      "[experiment]\nname = t\nkind = serving\n"
      "[serving]\nscenarios = overload\nthreads = 1\n"
      "max_queue_depth = 16\n"
      "[overload]\nfactor = 2.0\nwindows = 3\nwindow_ms = 100\n"
      "deadline_ms = 5\nlow_priority_every = 4\nrate_rps = 0\n"
      "shed_latency_ms = 0\nhot_swap = 1\n"
      "[chaos]\nfaults = server.admit@2, infer.hot_reload@0\n");
  RunOptions options;
  options.dry_run = true;
  const RunResult result = RunSpec(spec, options);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.cells, 1);

  // A typo inside [overload] is refused like any other unknown key.
  const Spec typo = ParseSpec(
      "[experiment]\nname = t\nkind = serving\n"
      "[serving]\nscenarios = overload\nthreads = 1\n"
      "[overload]\nfactar = 2.0\n");
  const RunResult bad = RunSpec(typo, options);
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("factar"), std::string::npos) << bad.error;
}

TEST(RunnerTest, ExpansionFailsOnUnknownAxisNames) {
  std::vector<std::string> cells;
  std::string error;
  EXPECT_FALSE(ExpandMatrix(
      ParseSpec("[experiment]\nname = m\nkind = training\n"
                "[data]\ndatasets = METR-LA\n[models]\nnames = NO-SUCH\n"),
      &cells, &error));
  EXPECT_NE(error.find("NO-SUCH"), std::string::npos) << error;

  EXPECT_FALSE(ExpandMatrix(
      ParseSpec("[experiment]\nname = m\nkind = warp\n"), &cells, &error));
  EXPECT_NE(error.find("kind"), std::string::npos) << error;
}

TEST(RunnerTest, RunSpecRejectsUnknownKeysWithLineNumbers) {
  const Spec spec = ParseSpec(
      "[experiment]\nname = t\nkind = dataset\n"
      "[data]\ndatasets = synthetic\nnum_nodes = 5\ntypo_key = 1\n");
  RunOptions options;
  options.dry_run = true;
  const RunResult result = RunSpec(spec, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unknown key 'typo_key'"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("line 7"), std::string::npos) << result.error;
}

TEST(RunnerTest, DatasetRunWritesGatedSchemaVersionedJson) {
  const Spec spec = ParseSpec(
      "[experiment]\nname = e2e_dataset\nkind = dataset\n"
      "[data]\ndatasets = synthetic\nnum_nodes = 6\nnum_steps = 128\n");
  RunOptions options;
  options.out_dir = testing::TempDir();
  options.baseline_path = "none";
  const RunResult result = RunSpec(spec, options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.cells, 1);
  EXPECT_NE(result.table.find("synthetic"), std::string::npos);

  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::Value::ParseFile(result.json_path, &doc, &error))
      << error;
  EXPECT_EQ(doc.Get("schema_version").AsInt(-1), kMetricsSchemaVersion);
  EXPECT_EQ(doc.Get("kind").AsString(), "dataset");
  EXPECT_EQ(doc.Get("records").at(0).Get("nodes").AsInt(-1), 6);
  std::remove(result.json_path.c_str());
}

TEST(RunnerTest, GateViolationIsDistinguishedFromOtherFailures) {
  // A baseline this run cannot meet: the synthetic graph has > 1 node.
  const std::string baseline_path =
      testing::TempDir() + "/impossible_baseline.json";
  {
    std::FILE* f = std::fopen(baseline_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(
        "{\"schema_version\": 1, \"bounds\": ["
        "{\"match\": {\"dataset\": \"synthetic\"}, \"metric\": \"nodes\","
        " \"max\": 1}]}\n",
        f);
    std::fclose(f);
  }
  const Spec spec = ParseSpec(
      "[experiment]\nname = e2e_gate\nkind = dataset\n"
      "[data]\ndatasets = synthetic\nnum_nodes = 6\nnum_steps = 128\n");
  RunOptions options;
  options.out_dir = testing::TempDir();
  options.baseline_path = baseline_path;
  const RunResult result = RunSpec(spec, options);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.gate_violation);
  EXPECT_NE(result.error.find("exceeds the baseline bound"),
            std::string::npos)
      << result.error;
  std::remove(result.json_path.c_str());
  std::remove(baseline_path.c_str());
}

}  // namespace
}  // namespace d2stgnn::experiment
