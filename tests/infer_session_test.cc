// Tests of the forward-only inference engine: request validation, feature
// parity with the training data loader, train -> checkpoint -> serve bitwise
// parity at 1 and 4 threads, zero steady-state allocations after warm-up,
// and checkpoint-load fault handling (no partial sessions).

#include "infer/session.h"

#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "core/d2stgnn.h"
#include "data/sliding_window.h"
#include "data/synthetic_traffic.h"
#include "nn/linear.h"
#include "train/checkpoint.h"
#include "train/trainer.h"

namespace d2stgnn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Same tiny model as train_test.cc / checkpoint_test.cc: linear readout of
// the last frame, so trained parity fixtures build in milliseconds.
class TinyModel : public train::ForecastingModel {
 public:
  TinyModel(int64_t num_nodes, int64_t horizon, Rng& rng)
      : ForecastingModel("tiny"),
        num_nodes_(num_nodes),
        horizon_(horizon),
        proj_(data::kInputFeatures, horizon, rng) {
    RegisterChild(&proj_);
  }

  Tensor Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size;
    const Tensor last = Reshape(
        Slice(batch.x, 1, batch.input_len - 1, batch.input_len),
        {b, num_nodes_, data::kInputFeatures});
    Tensor out = proj_.Forward(last);
    out = Permute(out, {0, 2, 1});
    return Reshape(out, {b, horizon_, num_nodes_, 1});
  }

  int64_t horizon() const override { return horizon_; }

 private:
  int64_t num_nodes_;
  int64_t horizon_;
  nn::Linear proj_;
};

constexpr int64_t kNodes = 6;
constexpr int64_t kInputLen = 12;
constexpr int64_t kHorizon = 12;

class InferSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    original_threads_ = GetNumThreads();
    data::SyntheticTrafficOptions options;
    options.network.num_nodes = kNodes;
    options.num_steps = 600;
    options.seed = 31;
    traffic_ = data::GenerateSyntheticTraffic(options);
    scaler_.Fit(traffic_.dataset.values, 400, true);
    splits_ = data::MakeChronologicalSplits(600, kInputLen, kHorizon, 0.7f,
                                            0.1f);
  }

  void TearDown() override {
    fault::DisarmAllFaultPoints();
    SetNumThreads(original_threads_);
  }

  infer::SessionOptions Options() const {
    infer::SessionOptions options;
    options.num_nodes = kNodes;
    options.input_len = kInputLen;
    options.steps_per_day = traffic_.dataset.steps_per_day;
    return options;
  }

  // The serving-side view of the window starting at dataset step `start`:
  // raw readings plus the wall-clock position of the first step.
  infer::ForecastRequest MakeRequest(int64_t start) const {
    infer::ForecastRequest request;
    const std::vector<float>& values = traffic_.dataset.values.Data();
    request.window.assign(values.data() + start * kNodes,
                          values.data() + (start + kInputLen) * kNodes);
    request.time_of_day = traffic_.dataset.TimeOfDay(start);
    request.day_of_week = traffic_.dataset.DayOfWeek(start);
    return request;
  }

  std::unique_ptr<TinyModel> NewTinyModel(uint64_t seed) const {
    Rng rng(seed);
    return std::make_unique<TinyModel>(kNodes, kHorizon, rng);
  }

  // Trains a TinyModel for two epochs and checkpoints it. Returns the
  // checkpoint path; `trained` (optional) receives the in-process model.
  std::string TrainAndCheckpoint(const std::string& name,
                                 std::unique_ptr<TinyModel>* trained) {
    data::WindowDataLoader train_loader(&traffic_.dataset, &scaler_,
                                        splits_.train, kInputLen, kHorizon,
                                        32);
    data::WindowDataLoader val_loader(&traffic_.dataset, &scaler_,
                                      splits_.val, kInputLen, kHorizon, 32);
    auto model = NewTinyModel(5);
    train::TrainerOptions options;
    options.epochs = 2;
    options.patience = 0;
    train::Trainer trainer(model.get(), &scaler_, options);
    trainer.Fit(&train_loader, &val_loader);
    const std::string path = TempPath(name);
    EXPECT_TRUE(train::SaveCheckpoint(*model, path));
    if (trained != nullptr) *trained = std::move(model);
    return path;
  }

  data::SyntheticTraffic traffic_;
  data::StandardScaler scaler_;
  data::SplitWindows splits_;
  int original_threads_ = 0;
};

TEST_F(InferSessionTest, WrapRejectsNullModelAndBadOptions) {
  EXPECT_EQ(infer::InferenceSession::Wrap(nullptr, scaler_, Options()),
            nullptr);
  infer::SessionOptions bad = Options();
  bad.num_nodes = 0;
  EXPECT_EQ(infer::InferenceSession::Wrap(NewTinyModel(1), scaler_, bad),
            nullptr);
}

TEST_F(InferSessionTest, ValidateRequestCatchesMalformedInput) {
  auto session =
      infer::InferenceSession::Wrap(NewTinyModel(1), scaler_, Options());
  ASSERT_NE(session, nullptr);

  EXPECT_EQ(session->ValidateRequest(MakeRequest(0)), "");

  infer::ForecastRequest short_window = MakeRequest(0);
  short_window.window.pop_back();
  EXPECT_NE(session->ValidateRequest(short_window), "");

  infer::ForecastRequest bad_tod = MakeRequest(0);
  bad_tod.time_of_day = traffic_.dataset.steps_per_day;
  EXPECT_NE(session->ValidateRequest(bad_tod), "");

  infer::ForecastRequest bad_dow = MakeRequest(0);
  bad_dow.day_of_week = 7;
  EXPECT_NE(session->ValidateRequest(bad_dow), "");
}

TEST_F(InferSessionTest, PredictRequestsKeepsOrderAcrossInvalidEntries) {
  auto session =
      infer::InferenceSession::Wrap(NewTinyModel(1), scaler_, Options());
  ASSERT_NE(session, nullptr);

  infer::ForecastRequest bad = MakeRequest(0);
  bad.window.clear();
  const std::vector<infer::Forecast> results = session->PredictRequests(
      {MakeRequest(0), bad, MakeRequest(3)});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("bad request"), std::string::npos);
  EXPECT_TRUE(results[2].ok);
  EXPECT_EQ(static_cast<int64_t>(results[0].values.size()),
            kHorizon * kNodes);

  // The valid entries match a clean all-valid run bitwise.
  const std::vector<infer::Forecast> clean =
      session->PredictRequests({MakeRequest(0), MakeRequest(3)});
  EXPECT_EQ(results[0].values, clean[0].values);
  EXPECT_EQ(results[2].values, clean[1].values);
}

// The request path must assemble bit-for-bit the features the training
// loader assembles for the same windows — z-scored readings, time-of-day
// and day-of-week channels, and the embedding index vectors.
TEST_F(InferSessionTest, AssembledBatchMatchesLoaderBitwise) {
  auto session =
      infer::InferenceSession::Wrap(NewTinyModel(1), scaler_, Options());
  ASSERT_NE(session, nullptr);

  data::WindowDataLoader loader(&traffic_.dataset, &scaler_, splits_.test,
                                kInputLen, kHorizon, 8);
  const data::Batch loader_batch = loader.GetBatch(0);

  std::vector<infer::ForecastRequest> requests;
  for (int64_t i = 0; i < loader_batch.batch_size; ++i) {
    requests.push_back(MakeRequest(splits_.test[static_cast<size_t>(i)]));
  }
  const data::Batch assembled = session->AssembleBatch(requests);

  ASSERT_EQ(assembled.x.shape(), loader_batch.x.shape());
  EXPECT_EQ(assembled.x.Data(), loader_batch.x.Data());
  EXPECT_EQ(assembled.time_of_day, loader_batch.time_of_day);
  EXPECT_EQ(assembled.day_of_week, loader_batch.day_of_week);
}

class InferSessionParityTest : public InferSessionTest,
                               public ::testing::WithParamInterface<int> {};

// The serving contract: train -> checkpoint -> load into a fresh session,
// and the session's forecasts are bitwise identical to the training stack's
// eval-mode forward, regardless of thread count.
TEST_P(InferSessionParityTest, CheckpointRoundTripMatchesTrainingStack) {
  SetNumThreads(GetParam());
  std::unique_ptr<TinyModel> trained;
  const std::string path = TrainAndCheckpoint(
      "parity_" + std::to_string(GetParam()) + ".d2ck", &trained);

  data::WindowDataLoader loader(&traffic_.dataset, &scaler_, splits_.test,
                                kInputLen, kHorizon, 8);
  const data::Batch batch = loader.GetBatch(0);
  trained->SetTraining(false);
  Tensor reference;
  {
    NoGradGuard no_grad;
    reference = scaler_.InverseTransform(trained->Forward(batch));
  }

  // Different init seed: every weight must come from the checkpoint.
  auto session = infer::InferenceSession::Load(NewTinyModel(99), path,
                                               scaler_, Options());
  ASSERT_NE(session, nullptr);

  // Batch path (the evaluator's shape of call).
  const Tensor via_batch = session->Predict(batch);
  ASSERT_EQ(via_batch.shape(), reference.shape());
  EXPECT_EQ(via_batch.Data(), reference.Data());

  // Request path (the server's shape of call).
  std::vector<infer::ForecastRequest> requests;
  for (int64_t i = 0; i < batch.batch_size; ++i) {
    requests.push_back(MakeRequest(splits_.test[static_cast<size_t>(i)]));
  }
  const std::vector<infer::Forecast> forecasts =
      session->PredictRequests(requests);
  const float* ref = reference.Data().data();
  for (size_t i = 0; i < forecasts.size(); ++i) {
    ASSERT_TRUE(forecasts[i].ok) << forecasts[i].error;
    ASSERT_EQ(static_cast<int64_t>(forecasts[i].values.size()),
              kHorizon * kNodes);
    for (size_t j = 0; j < forecasts[i].values.size(); ++j) {
      ASSERT_EQ(forecasts[i].values[j], ref[i * kHorizon * kNodes + j])
          << "request " << i << " element " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, InferSessionParityTest,
                         ::testing::Values(1, 4));

// The tentpole allocation contract, on the paper's real model: after
// warm-up at a batch size, further forwards at that size acquire every
// tensor buffer from the pool — fresh allocations and arena-bypassing
// constructions both stay flat while pool hits grow.
TEST_F(InferSessionTest, NoNewTensorBuffersAfterWarmup) {
  core::D2StgnnConfig config;
  config.num_nodes = kNodes;
  config.input_len = kInputLen;
  config.output_len = 3;
  config.hidden_dim = 8;
  config.embed_dim = 4;
  config.num_layers = 1;
  config.num_heads = 2;
  config.steps_per_day = traffic_.dataset.steps_per_day;
  Rng rng(7);
  auto model = std::make_unique<core::D2Stgnn>(
      config, traffic_.dataset.network.adjacency, rng);
  auto session =
      infer::InferenceSession::Wrap(std::move(model), scaler_, Options());
  ASSERT_NE(session, nullptr);

  session->Warmup(/*batch_size=*/4, /*runs=*/2);
  const BufferArenaStats before = session->arena_stats();
  EXPECT_GT(before.fresh_allocations, 0);

  std::vector<infer::ForecastRequest> requests;
  for (int64_t i = 0; i < 4; ++i) {
    requests.push_back(MakeRequest(splits_.test[static_cast<size_t>(i)]));
  }
  for (int iter = 0; iter < 3; ++iter) {
    const std::vector<infer::Forecast> forecasts =
        session->PredictRequests(requests);
    for (const infer::Forecast& f : forecasts) ASSERT_TRUE(f.ok) << f.error;
  }

  const BufferArenaStats after = session->arena_stats();
  EXPECT_EQ(after.fresh_allocations, before.fresh_allocations)
      << "steady-state forward allocated a new tensor buffer";
  EXPECT_EQ(after.external_adopts, before.external_adopts)
      << "steady-state forward built a tensor bypassing the arena";
  EXPECT_GT(after.pool_hits, before.pool_hits);
}

// The same contract with plans disabled: the EAGER forward path itself must
// be allocation-free after warm-up — every op routes its result and scratch
// buffers through BufferArena::AcquireBuffer, so steady-state eager serving
// (the fallback path for unplanned shapes) performs no fresh allocations.
TEST_F(InferSessionTest, EagerForwardIsAllocationFreeAfterWarmup) {
  core::D2StgnnConfig config;
  config.num_nodes = kNodes;
  config.input_len = kInputLen;
  config.output_len = 3;
  config.hidden_dim = 8;
  config.embed_dim = 4;
  config.num_layers = 1;
  config.num_heads = 2;
  config.steps_per_day = traffic_.dataset.steps_per_day;
  Rng rng(7);
  auto model = std::make_unique<core::D2Stgnn>(
      config, traffic_.dataset.network.adjacency, rng);
  infer::SessionOptions options = Options();
  options.use_plans = false;
  auto session =
      infer::InferenceSession::Wrap(std::move(model), scaler_, options);
  ASSERT_NE(session, nullptr);

  session->Warmup(/*batch_size=*/4, /*runs=*/2);
  const BufferArenaStats before = session->arena_stats();
  EXPECT_GT(before.fresh_allocations, 0);

  std::vector<infer::ForecastRequest> requests;
  for (int64_t i = 0; i < 4; ++i) {
    requests.push_back(MakeRequest(splits_.test[static_cast<size_t>(i)]));
  }
  for (int iter = 0; iter < 3; ++iter) {
    const std::vector<infer::Forecast> forecasts =
        session->PredictRequests(requests);
    for (const infer::Forecast& f : forecasts) ASSERT_TRUE(f.ok) << f.error;
  }
  EXPECT_EQ(session->session_stats().plan_replays, 0);
  EXPECT_EQ(session->session_stats().eager_forwards, 5);  // 2 warmup + 3

  const BufferArenaStats after = session->arena_stats();
  EXPECT_EQ(after.fresh_allocations, before.fresh_allocations)
      << "steady-state eager forward allocated a new tensor buffer";
  EXPECT_EQ(after.external_adopts, before.external_adopts)
      << "steady-state eager forward built a tensor bypassing the arena";
  EXPECT_GT(after.pool_hits, before.pool_hits);
}

// The arena is an optimization, never a semantics change: pooled and
// unpooled sessions around the same weights forecast identically.
TEST_F(InferSessionTest, ArenaDoesNotChangeForecasts) {
  const std::string path = TrainAndCheckpoint("arena_ab.d2ck", nullptr);

  auto pooled = infer::InferenceSession::Load(NewTinyModel(1), path, scaler_,
                                              Options());
  infer::SessionOptions no_arena = Options();
  no_arena.use_arena = false;
  auto plain = infer::InferenceSession::Load(NewTinyModel(2), path, scaler_,
                                             no_arena);
  ASSERT_NE(pooled, nullptr);
  ASSERT_NE(plain, nullptr);

  const std::vector<infer::ForecastRequest> requests = {MakeRequest(0),
                                                        MakeRequest(7)};
  pooled->Warmup(2);
  const std::vector<infer::Forecast> a = pooled->PredictRequests(requests);
  const std::vector<infer::Forecast> b = plain->PredictRequests(requests);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok && b[i].ok);
    EXPECT_EQ(a[i].values, b[i].values);
  }
  const BufferArenaStats off = plain->arena_stats();
  EXPECT_EQ(off.fresh_allocations, 0);
  EXPECT_EQ(off.pool_hits, 0);
}

TEST_F(InferSessionTest, CorruptCheckpointProducesNoSession) {
  const std::string path = TrainAndCheckpoint("corrupt_src.d2ck", nullptr);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);

  // Truncated file.
  const std::string truncated = TempPath("truncated.d2ck");
  {
    std::ofstream out(truncated, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_EQ(infer::InferenceSession::Load(NewTinyModel(1), truncated,
                                          scaler_, Options()),
            nullptr);

  // Flipped payload byte (caught by the checksum).
  const std::string corrupt = TempPath("flipped.d2ck");
  bytes[bytes.size() / 2] ^= 0x5a;
  {
    std::ofstream out(corrupt, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_EQ(infer::InferenceSession::Load(NewTinyModel(2), corrupt, scaler_,
                                          Options()),
            nullptr);

  EXPECT_EQ(infer::InferenceSession::Load(NewTinyModel(3),
                                          TempPath("missing.d2ck"), scaler_,
                                          Options()),
            nullptr);
}

TEST_F(InferSessionTest, InjectedLoadFaultProducesNoSession) {
  const std::string path = TrainAndCheckpoint("fault_load.d2ck", nullptr);

  fault::ArmFaultPoint("infer.checkpoint_load",
                       {fault::FaultKind::kErrno, /*trigger_offset=*/0});
  EXPECT_EQ(infer::InferenceSession::Load(NewTinyModel(1), path, scaler_,
                                          Options()),
            nullptr);
  EXPECT_GE(fault::FaultFireCount(), 1);

  // The script disarmed itself after firing; the same load now succeeds.
  auto session = infer::InferenceSession::Load(NewTinyModel(2), path,
                                               scaler_, Options());
  ASSERT_NE(session, nullptr);
  EXPECT_TRUE(session->PredictOne(MakeRequest(0)).ok);
}

// Satellite coverage: the full fallback-accounting trajectory across a
// verifier rejection. A rejected capture leaves the size eager; re-warming
// repairs the cache; every SessionStats counter moves exactly once per
// event, so operators can read the sequence off a stats dump.
TEST_F(InferSessionTest, FallbackAccountingAcrossVerifyRejectEagerRepair) {
  infer::SessionOptions options = Options();
  options.use_plans = true;
  options.verify_plans = true;
  auto session =
      infer::InferenceSession::Wrap(NewTinyModel(5), scaler_, options);
  ASSERT_NE(session, nullptr);

  // 1. Warm-up under an injected verifier rejection: the capture runs, the
  // verifier fires, the plan is refused, the warm-up forward runs eagerly.
  fault::ArmFaultPoint("infer.plan_verify",
                       {fault::FaultKind::kErrno, /*trigger_offset=*/0});
  session->Warmup(2);
  infer::SessionStats stats = session->session_stats();
  EXPECT_EQ(stats.plans_built, 0);
  EXPECT_EQ(stats.plans_verified, 1);
  EXPECT_EQ(stats.plan_verifier_errors, 1);
  EXPECT_EQ(stats.plan_replays, 0);
  EXPECT_EQ(stats.eager_forwards, 1);  // the warm-up run fell back
  EXPECT_TRUE(session->planned_batch_sizes().empty());
  EXPECT_TRUE(session->verifier_reports().empty())
      << "a rejected plan must not leave a report behind";

  // 2. Traffic at the rejected size keeps falling back to eager — served
  // correctly, just without a plan.
  const std::vector<infer::ForecastRequest> requests(2, MakeRequest(0));
  std::vector<infer::Forecast> forecasts = session->PredictRequests(requests);
  for (const infer::Forecast& f : forecasts) EXPECT_TRUE(f.ok) << f.error;
  stats = session->session_stats();
  EXPECT_EQ(stats.eager_forwards, 2);
  EXPECT_EQ(stats.plan_replays, 0);

  // 3. Re-warming repairs the cache: the one-shot fault is spent, the
  // fresh capture verifies clean, and the warm-up forward replays it.
  session->Warmup(2);
  stats = session->session_stats();
  EXPECT_EQ(stats.plans_built, 1);
  EXPECT_EQ(stats.plans_verified, 2);
  EXPECT_EQ(stats.plan_verifier_errors, 1);  // history, not current state
  EXPECT_EQ(stats.plan_replays, 1);
  EXPECT_EQ(stats.eager_forwards, 2);  // eager traffic stopped
  EXPECT_EQ(session->planned_batch_sizes(), std::vector<int64_t>{2});
  EXPECT_EQ(session->verifier_reports().count(2), 1u);

  // 4. Post-repair traffic replays; nothing else moves.
  forecasts = session->PredictRequests(requests);
  for (const infer::Forecast& f : forecasts) EXPECT_TRUE(f.ok) << f.error;
  stats = session->session_stats();
  EXPECT_EQ(stats.plan_replays, 2);
  EXPECT_EQ(stats.eager_forwards, 2);
  EXPECT_EQ(stats.plan_invalidations, 0);
}

}  // namespace
}  // namespace d2stgnn
