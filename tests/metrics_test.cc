#include "metrics/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace d2stgnn::metrics {
namespace {

TEST(Metrics, ExactValuesOnKnownData) {
  Tensor pred({4}, {1.0f, 2.0f, 3.0f, 4.0f});
  Tensor truth({4}, {1.0f, 4.0f, 1.0f, 8.0f});
  const MetricSet m = ComputeMetrics(pred, truth, /*null_value=*/-1.0f);
  // errors: 0, -2, 2, -4
  EXPECT_NEAR(m.mae, 2.0, 1e-6);
  EXPECT_NEAR(m.rmse, std::sqrt((0.0 + 4.0 + 4.0 + 16.0) / 4.0), 1e-6);
  EXPECT_NEAR(m.mape, (0.0 + 0.5 + 2.0 + 0.5) / 4.0, 1e-6);
  EXPECT_EQ(m.count, 4);
}

TEST(Metrics, MasksNullValues) {
  Tensor pred({3}, {10.0f, 100.0f, 10.0f});
  Tensor truth({3}, {12.0f, 0.0f, 8.0f});  // middle entry is a failure
  const MetricSet m = ComputeMetrics(pred, truth, 0.0f);
  EXPECT_EQ(m.count, 2);
  EXPECT_NEAR(m.mae, 2.0, 1e-6);
}

TEST(Metrics, PerfectPredictionIsZero) {
  Rng rng(1);
  Tensor truth = Tensor::Rand({20}, rng, 1.0f, 10.0f);
  const MetricSet m = ComputeMetrics(truth, truth);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_DOUBLE_EQ(m.rmse, 0.0);
  EXPECT_DOUBLE_EQ(m.mape, 0.0);
}

TEST(Metrics, RmseAtLeastMae) {
  Rng rng(2);
  Tensor pred = Tensor::Rand({50}, rng, 1.0f, 5.0f);
  Tensor truth = Tensor::Rand({50}, rng, 1.0f, 5.0f);
  const MetricSet m = ComputeMetrics(pred, truth);
  EXPECT_GE(m.rmse, m.mae);
}

TEST(MaskedMaeLossTest, MatchesMetricOnCleanData) {
  Rng rng(3);
  Tensor pred = Tensor::Rand({10}, rng, 1.0f, 5.0f);
  Tensor truth = Tensor::Rand({10}, rng, 1.0f, 5.0f);
  const float loss = MaskedMaeLoss(pred, truth).Item();
  EXPECT_NEAR(loss, ComputeMetrics(pred, truth).mae, 1e-5);
}

TEST(MaskedMaeLossTest, IgnoresMaskedEntries) {
  Tensor pred({2}, {5.0f, 1000.0f});
  Tensor truth({2}, {4.0f, 0.0f});
  EXPECT_NEAR(MaskedMaeLoss(pred, truth).Item(), 1.0f, 1e-6f);
}

TEST(MaskedMaeLossTest, AllMaskedGivesZeroLossAndGrad) {
  Tensor pred = Tensor::Ones({3}).SetRequiresGrad(true);
  Tensor truth = Tensor::Zeros({3});
  Tensor loss = MaskedMaeLoss(pred, truth);
  EXPECT_FLOAT_EQ(loss.Item(), 0.0f);
  loss.Backward();
  for (float g : pred.GradData()) EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(MaskedMaeLossTest, GradientIsSignOverCount) {
  Tensor pred({2}, {5.0f, 1.0f});
  pred.SetRequiresGrad(true);
  Tensor truth({2}, {3.0f, 2.0f});
  MaskedMaeLoss(pred, truth, -1.0f).Backward();
  EXPECT_NEAR(pred.Grad().At(0), 0.5f, 1e-6f);   // over-prediction
  EXPECT_NEAR(pred.Grad().At(1), -0.5f, 1e-6f);  // under-prediction
}

TEST(MaskedMaeLossTest, GradCheck) {
  Rng rng(4);
  Tensor pred = Tensor::Rand({8}, rng, 1.0f, 3.0f).SetRequiresGrad(true);
  Tensor truth = Tensor::Rand({8}, rng, 4.0f, 6.0f);  // keep |err| > eps
  auto loss = [&] { return MaskedMaeLoss(pred, truth); };
  auto result = CheckGradients(loss, {pred}, rng, 1e-3f);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  // Type-7 (linear) interpolation over {1..4}: rank = pct/100 * (n-1).
  const std::vector<double> samples = {4.0, 1.0, 3.0, 2.0};  // unsorted input
  EXPECT_DOUBLE_EQ(Percentile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(samples, 75.0), 3.25);
  EXPECT_DOUBLE_EQ(Percentile(samples, 100.0), 4.0);
}

TEST(PercentileTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 99.0), 7.0);
}

TEST(SummarizeLatenciesTest, MatchesPercentileAndMoments) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(static_cast<double>(i));
  const LatencyStats stats = SummarizeLatencies(samples);
  EXPECT_EQ(stats.count, 100);
  EXPECT_DOUBLE_EQ(stats.p50, Percentile(samples, 50.0));
  EXPECT_DOUBLE_EQ(stats.p95, Percentile(samples, 95.0));
  EXPECT_DOUBLE_EQ(stats.p99, Percentile(samples, 99.0));
  EXPECT_DOUBLE_EQ(stats.mean, 50.5);
  EXPECT_DOUBLE_EQ(stats.max, 100.0);
  EXPECT_LE(stats.p50, stats.p95);
  EXPECT_LE(stats.p95, stats.p99);
}

TEST(SummarizeLatenciesTest, EmptyIsAllZero) {
  const LatencyStats stats = SummarizeLatencies({});
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.p50, 0.0);
  EXPECT_DOUBLE_EQ(stats.p99, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
  EXPECT_DOUBLE_EQ(stats.max, 0.0);
}

TEST(MseLossTest, ValueAndGrad) {
  Tensor pred({2}, {1.0f, 3.0f});
  pred.SetRequiresGrad(true);
  Tensor truth({2}, {0.0f, 0.0f});
  Tensor loss = MseLoss(pred, truth);
  EXPECT_NEAR(loss.Item(), (1.0f + 9.0f) / 2.0f, 1e-6f);
  loss.Backward();
  EXPECT_NEAR(pred.Grad().At(0), 1.0f, 1e-5f);  // 2 * err / n
  EXPECT_NEAR(pred.Grad().At(1), 3.0f, 1e-5f);
}

}  // namespace
}  // namespace d2stgnn::metrics
