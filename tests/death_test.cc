// Death tests: the library's no-exceptions error handling (D2_CHECK) must
// abort with a diagnostic on contract violations instead of corrupting
// state.

#include <unistd.h>

#include <csignal>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "data/sliding_window.h"
#include "nn/linear.h"
#include "tensor/ops.h"
#include "train/checkpoint.h"

namespace d2stgnn {
namespace {

using DeathTest = ::testing::Test;

TEST(DeathTest, CheckMacroPrintsMessageAndAborts) {
  EXPECT_DEATH({ D2_CHECK(false) << "extra context 42"; },
               "Check failed: false.*extra context 42");
  EXPECT_DEATH({ D2_CHECK_EQ(1, 2); }, "1 == 2 \\(1 vs. 2\\)");
}

TEST(DeathTest, BroadcastMismatchAborts) {
  Tensor a({2, 3});
  Tensor b({2, 4});
  EXPECT_DEATH(Add(a, b), "incompatible shapes");
}

TEST(DeathTest, MatMulInnerDimMismatchAborts) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_DEATH(MatMul(a, b), "inner dimensions mismatch");
}

TEST(DeathTest, BackwardOnNonScalarAborts) {
  Tensor a = Tensor::Ones({2}).SetRequiresGrad(true);
  Tensor y = Mul(a, a);
  EXPECT_DEATH(y.Backward(), "scalar");
}

TEST(DeathTest, ReshapeElementCountMismatchAborts) {
  Tensor a({2, 3});
  EXPECT_DEATH(Reshape(a, {4, 2}), "Reshape");
}

TEST(DeathTest, SliceOutOfRangeAborts) {
  Tensor a({2, 3});
  EXPECT_DEATH(Slice(a, 1, 0, 9), "");
}

TEST(DeathTest, EmbeddingIndexOutOfRangeAborts) {
  Tensor table({3, 2});
  EXPECT_DEATH(EmbeddingLookup(table, {5}, {1}), "out of range");
}

TEST(DeathTest, LinearWrongInputWidthAborts) {
  Rng rng(1);
  nn::Linear layer(4, 2, rng);
  EXPECT_DEATH(layer.Forward(Tensor::Ones({2, 5})), "Linear expects");
}

TEST(DeathTest, ItemOnMultiElementAborts) {
  Tensor a({3});
  EXPECT_DEATH(a.Item(), "single-element");
}

// Crash safety: SIGKILL the process mid-checkpoint-write and assert the
// previously committed checkpoint is still fully loadable (the atomic
// temp+rename protocol never exposes a torn file under the final name).
TEST(DeathTest, SigkillMidCheckpointWriteKeepsPreviousLoadable) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path =
      ::testing::TempDir() + "/death_midwrite.d2ck";
  ::unlink(path.c_str());
  EXPECT_EXIT(
      {
        Rng rng(3);
        nn::Linear layer(4, 2, rng);
        std::vector<Tensor> params = layer.Parameters();
        for (Tensor& p : params) {
          for (float& x : p.Data()) x = 1.25f;
        }
        if (!train::SaveCheckpoint(layer, path)) ::_exit(1);
        for (Tensor& p : params) {
          for (float& x : p.Data()) x = 2.5f;
        }
        fault::FaultScript script;
        script.kind = fault::FaultKind::kCrash;
        script.trigger_offset = 24;
        fault::ArmFaultPoint("checkpoint.write", script);
        train::SaveCheckpoint(layer, path);  // SIGKILLs itself mid-write
        ::_exit(0);                          // never reached
      },
      ::testing::KilledBySignal(SIGKILL), "");
  Rng rng(9);
  nn::Linear loaded(4, 2, rng);
  ASSERT_TRUE(train::LoadCheckpoint(&loaded, path));
  for (const Tensor& p : loaded.Parameters()) {
    for (float x : p.Data()) EXPECT_EQ(x, 1.25f);
  }
}

}  // namespace
}  // namespace d2stgnn
