// Tape analyzer tests: AnalyzeTape must report accurate structure for sound
// graphs and flag cycles and double-backward misuse; TapeWatchdog must
// catch cross-step tape growth and leaked GradFn nodes while staying quiet
// on a healthy training loop.

#include "tensor/tape_analyzer.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/ops.h"

namespace d2stgnn {
namespace {

TEST(TapeAnalyzerTest, ReportsStructureOfSimpleGraph) {
  Tensor w = Tensor::Ones({2, 3}).SetRequiresGrad(true);
  Tensor product = Mul(w, w);
  Tensor loss = Sum(product);

  const TapeReport report = AnalyzeTape(loss);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.nodes, 2);      // Sum node + Mul node
  EXPECT_EQ(report.edges, 1);      // Sum -> Mul (w is a leaf)
  EXPECT_EQ(report.max_depth, 2);
  EXPECT_EQ(report.saved_tensors, 3);  // Sum saves {product}; Mul saves {w, w}
  // Distinct saved storage: product (6) + w (6).
  EXPECT_EQ(report.saved_elements, 12);
  EXPECT_FALSE(report.has_cycle);
  EXPECT_GE(report.live_gradfn, report.nodes);
}

TEST(TapeAnalyzerTest, LeafHasEmptyReport) {
  Tensor w = Tensor::Ones({4}).SetRequiresGrad(true);
  const TapeReport report = AnalyzeTape(w);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.nodes, 0);
}

TEST(TapeAnalyzerTest, FlagsDoubleBackward) {
  Tensor w = Tensor::Ones({3}).SetRequiresGrad(true);
  Tensor loss = Sum(Mul(w, w));
  loss.Backward();
  EXPECT_TRUE(AnalyzeTape(loss).ok());
  loss.Backward();  // second run re-accumulates every gradient
  const TapeReport report = AnalyzeTape(loss);
  ASSERT_EQ(report.issues.size(), 1u) << report.ToString();
  EXPECT_EQ(report.issues[0].kind, "double-backward");
  EXPECT_EQ(report.backward_runs, 2);
}

TEST(TapeAnalyzerTest, DetectsManufacturedCycle) {
  Tensor w = Tensor::Ones({2}).SetRequiresGrad(true);
  Tensor a = Mul(w, w);
  Tensor b = Mul(a, w);
  // No public op can produce a cycle; splice one directly into the tape to
  // verify the analyzer would catch a corrupted graph.
  a.impl()->grad_fn->inputs.push_back(b);
  const TapeReport report = AnalyzeTape(b);
  EXPECT_TRUE(report.has_cycle);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues[0].kind, "cycle");
  // Undo the splice so destruction can free the graph (the cycle would
  // otherwise keep the shared_ptrs alive).
  a.impl()->grad_fn->inputs.pop_back();
}

TEST(TapeAnalyzerTest, LiveGradFnCountDropsWhenTapeDies) {
  const int64_t before = internal::LiveGradFnCount();
  {
    Tensor w = Tensor::Ones({3}).SetRequiresGrad(true);
    Tensor loss = Sum(Mul(w, w));
    EXPECT_EQ(internal::LiveGradFnCount(), before + 2);
  }
  EXPECT_EQ(internal::LiveGradFnCount(), before);
}

TEST(TapeWatchdogTest, QuietOnHealthyTrainingLoop) {
  TapeWatchdog watchdog(/*window=*/3);
  Tensor w = Tensor::Ones({2, 2}).SetRequiresGrad(true);
  for (int step = 0; step < 8; ++step) {
    Tensor loss = Sum(Mul(w, w));  // fresh tape; last step's is freed
    loss.Backward();
    const TapeReport report = watchdog.EndStep(loss);
    EXPECT_TRUE(report.ok()) << "step " << step << ": " << report.ToString();
    w.ZeroGrad();
  }
  EXPECT_EQ(watchdog.steps(), 8);
}

TEST(TapeWatchdogTest, FlagsPerStepTapeGrowth) {
  TapeWatchdog watchdog(/*window=*/3);
  Tensor w = Tensor::Ones({2}).SetRequiresGrad(true);
  // Classic bug: the "loss" chains onto every earlier iteration.
  Tensor total = Sum(Mul(w, w));
  bool flagged = false;
  for (int step = 0; step < 6; ++step) {
    total = Add(total, Sum(Mul(w, w)));
    const TapeReport report = watchdog.EndStep(total);
    for (const TapeIssue& issue : report.issues) {
      if (issue.kind == "tape-growth") flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(TapeWatchdogTest, FlagsLeakedGradFnNodes) {
  TapeWatchdog watchdog(/*window=*/3);
  Tensor w = Tensor::Ones({2}).SetRequiresGrad(true);
  std::vector<Tensor> leaked;  // simulates saved losses never released
  bool flagged = false;
  for (int step = 0; step < 6; ++step) {
    Tensor loss = Sum(Mul(w, w));
    leaked.push_back(loss);
    const TapeReport report = watchdog.EndStep(loss);
    // The current step's tape stays constant, so growth is not flagged...
    for (const TapeIssue& issue : report.issues) {
      EXPECT_NE(issue.kind, "tape-growth") << issue.detail;
      if (issue.kind == "tape-leak") flagged = true;
    }
  }
  // ...but the process-wide live count rising every step is.
  EXPECT_TRUE(flagged);
}

}  // namespace
}  // namespace d2stgnn
