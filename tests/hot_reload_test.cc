// Tests of transactional checkpoint hot-reload: a new checkpoint in the
// watched directory is staged into a shadow session (load + warm-up + plan
// verification) and atomically swapped into the BatchingServer; any staging
// failure — corrupt file, injected fault — keeps the old session serving
// and heals on a later poll.

#include "infer/hot_reload.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "infer/batching_server.h"
#include "data/sliding_window.h"
#include "data/synthetic_traffic.h"
#include "nn/linear.h"
#include "train/checkpoint.h"
#include "train/forecasting_model.h"

namespace d2stgnn {
namespace {

// Same tiny model as infer_server_test.cc: linear readout of the last
// frame, batch-independent, so bitwise comparisons across servers hold.
class TinyModel : public train::ForecastingModel {
 public:
  TinyModel(int64_t num_nodes, int64_t horizon, Rng& rng)
      : ForecastingModel("tiny"),
        num_nodes_(num_nodes),
        horizon_(horizon),
        proj_(data::kInputFeatures, horizon, rng) {
    RegisterChild(&proj_);
  }

  Tensor Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size;
    const Tensor last = Reshape(
        Slice(batch.x, 1, batch.input_len - 1, batch.input_len),
        {b, num_nodes_, data::kInputFeatures});
    Tensor out = proj_.Forward(last);
    out = Permute(out, {0, 2, 1});
    return Reshape(out, {b, horizon_, num_nodes_, 1});
  }

  int64_t horizon() const override { return horizon_; }

 private:
  int64_t num_nodes_;
  int64_t horizon_;
  nn::Linear proj_;
};

constexpr int64_t kNodes = 6;
constexpr int64_t kInputLen = 12;
constexpr int64_t kHorizon = 12;

class HotReloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticTrafficOptions options;
    options.network.num_nodes = kNodes;
    options.num_steps = 600;
    options.seed = 31;
    traffic_ = data::GenerateSyntheticTraffic(options);
    scaler_.Fit(traffic_.dataset.values, 400, true);

    watch_dir_ = ::testing::TempDir() + "/hot_reload_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name();
    std::filesystem::remove_all(watch_dir_);
    std::filesystem::create_directories(watch_dir_);
  }

  void TearDown() override {
    fault::DisarmAllFaultPoints();
    std::filesystem::remove_all(watch_dir_);
  }

  infer::SessionOptions Options() const {
    infer::SessionOptions options;
    options.num_nodes = kNodes;
    options.input_len = kInputLen;
    options.steps_per_day = traffic_.dataset.steps_per_day;
    return options;
  }

  infer::ForecastRequest MakeRequest(int64_t start) const {
    infer::ForecastRequest request;
    const std::vector<float>& values = traffic_.dataset.values.Data();
    request.window.assign(values.data() + start * kNodes,
                          values.data() + (start + kInputLen) * kNodes);
    request.time_of_day = traffic_.dataset.TimeOfDay(start);
    request.day_of_week = traffic_.dataset.DayOfWeek(start);
    return request;
  }

  std::unique_ptr<TinyModel> NewTinyModel(uint64_t seed) const {
    Rng rng(seed);
    return std::make_unique<TinyModel>(kNodes, kHorizon, rng);
  }

  /// What a seed-`seed` model answers for MakeRequest(start), eagerly.
  std::vector<float> Reference(uint64_t seed, int64_t start) const {
    auto session =
        infer::InferenceSession::Wrap(NewTinyModel(seed), scaler_, Options());
    EXPECT_NE(session, nullptr);
    const infer::Forecast f = session->PredictOne(MakeRequest(start));
    EXPECT_TRUE(f.ok) << f.error;
    return f.values;
  }

  /// Writes the weights of a seed-`seed` model as checkpoint step `step`.
  std::string WriteCheckpoint(uint64_t seed, int64_t step) const {
    const std::string path = train::CheckpointPathForStep(watch_dir_, step);
    EXPECT_TRUE(train::SaveCheckpoint(*NewTinyModel(seed), path));
    return path;
  }

  /// A server around a seed-5 session plus a reloader watching watch_dir_.
  struct Serving {
    std::shared_ptr<infer::InferenceSession> session;
    std::unique_ptr<infer::BatchingServer> server;
    std::unique_ptr<infer::CheckpointReloader> reloader;
  };

  Serving MakeServing(const infer::HotReloadOptions& reload_options) {
    Serving s;
    s.session =
        infer::InferenceSession::Wrap(NewTinyModel(5), scaler_, Options());
    EXPECT_NE(s.session, nullptr);
    infer::BatchingOptions options;
    options.max_batch_size = 4;
    options.max_wait_us = 500;
    s.server = std::make_unique<infer::BatchingServer>(s.session, options);
    s.reloader = std::make_unique<infer::CheckpointReloader>(
        s.server.get(), [this] { return NewTinyModel(99); }, scaler_,
        Options(), reload_options);
    return s;
  }

  data::SyntheticTraffic traffic_;
  data::StandardScaler scaler_;
  std::string watch_dir_;
};

TEST_F(HotReloadTest, EmptyDirectoryIsNoChange) {
  infer::HotReloadOptions reload_options;
  reload_options.directory = watch_dir_;
  Serving s = MakeServing(reload_options);

  const infer::ReloadStatus status = s.reloader->PollOnce();
  EXPECT_EQ(status.outcome, infer::ReloadOutcome::kNoChange);
  const infer::ReloadStats stats = s.reloader->stats();
  EXPECT_EQ(stats.attempts, 0);
  EXPECT_EQ(s.server->stats().session_swaps, 0);
}

TEST_F(HotReloadTest, NewCheckpointSwapsInBitwise) {
  infer::HotReloadOptions reload_options;
  reload_options.directory = watch_dir_;
  Serving s = MakeServing(reload_options);

  // Served by the boot session first.
  const std::vector<float> old_values = Reference(5, 3);
  infer::Forecast before = s.server->Submit(MakeRequest(3)).get();
  ASSERT_TRUE(before.ok) << before.error;
  EXPECT_EQ(before.values, old_values);

  // Drop in a checkpoint carrying seed-11 weights (the factory's own seed
  // 99 must not matter: the load overwrites every parameter).
  const std::string checkpoint = WriteCheckpoint(11, 1);
  const infer::ReloadStatus status = s.reloader->PollOnce();
  EXPECT_EQ(status.outcome, infer::ReloadOutcome::kSwapped);
  EXPECT_EQ(status.checkpoint, checkpoint);

  const std::vector<float> new_values = Reference(11, 3);
  ASSERT_NE(new_values, old_values);
  infer::Forecast after = s.server->Submit(MakeRequest(3)).get();
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.values, new_values);  // bitwise: same load path as training

  const infer::ReloadStats stats = s.reloader->stats();
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.swaps, 1);
  EXPECT_EQ(stats.active_checkpoint, checkpoint);
  EXPECT_EQ(s.server->stats().session_swaps, 1);

  // Same checkpoint next poll: nothing to do.
  EXPECT_EQ(s.reloader->PollOnce().outcome, infer::ReloadOutcome::kNoChange);
}

TEST_F(HotReloadTest, CorruptCheckpointIsRejectedAndOldSessionServes) {
  infer::HotReloadOptions reload_options;
  reload_options.directory = watch_dir_;
  Serving s = MakeServing(reload_options);
  const std::vector<float> old_values = Reference(5, 3);

  // A plausible-looking but garbage checkpoint file.
  const std::string bad = train::CheckpointPathForStep(watch_dir_, 1);
  std::ofstream out(bad, std::ios::binary);
  out << "D2CKPT02 but not really";
  out.close();

  const infer::ReloadStatus status = s.reloader->PollOnce();
  EXPECT_EQ(status.outcome, infer::ReloadOutcome::kRejected);
  EXPECT_THAT(status.error, ::testing::HasSubstr("checkpoint load failed"));

  // The old session still serves, bitwise unchanged.
  infer::Forecast f = s.server->Submit(MakeRequest(3)).get();
  ASSERT_TRUE(f.ok) << f.error;
  EXPECT_EQ(f.values, old_values);
  EXPECT_EQ(s.server->stats().session_swaps, 0);

  // A good checkpoint with a *newer* step supersedes the bad one.
  WriteCheckpoint(11, 2);
  EXPECT_EQ(s.reloader->PollOnce().outcome, infer::ReloadOutcome::kSwapped);
  const infer::ReloadStats stats = s.reloader->stats();
  EXPECT_EQ(stats.attempts, 2);
  EXPECT_EQ(stats.rejects, 1);
  EXPECT_EQ(stats.swaps, 1);
}

TEST_F(HotReloadTest, InjectedReloadFaultHealsOnNextPoll) {
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;
  fault::ArmFaultPoint("infer.hot_reload", script);

  infer::HotReloadOptions reload_options;
  reload_options.directory = watch_dir_;
  Serving s = MakeServing(reload_options);

  WriteCheckpoint(11, 1);
  const infer::ReloadStatus faulted = s.reloader->PollOnce();
  EXPECT_EQ(faulted.outcome, infer::ReloadOutcome::kRejected);
  EXPECT_THAT(faulted.error, ::testing::HasSubstr("injected"));
  EXPECT_EQ(s.server->stats().session_swaps, 0);

  // The script was one-shot; the *same* checkpoint is retried and lands.
  const infer::ReloadStatus healed = s.reloader->PollOnce();
  EXPECT_EQ(healed.outcome, infer::ReloadOutcome::kSwapped);
  EXPECT_EQ(s.server->stats().session_swaps, 1);
  EXPECT_EQ(s.reloader->stats().rejects, 1);
}

TEST_F(HotReloadTest, WatcherThreadSwapsUnderLiveTraffic) {
  infer::HotReloadOptions reload_options;
  reload_options.directory = watch_dir_;
  reload_options.poll_interval_ms = 5;
  Serving s = MakeServing(reload_options);
  s.reloader->Start();

  const std::vector<float> new_values = Reference(11, 3);

  // Keep traffic flowing while the checkpoint appears and the watcher
  // stages + swaps it; every in-flight forecast must still resolve ok.
  std::atomic<bool> stop{false};
  std::thread client([&] {
    while (!stop.load()) {
      infer::Forecast f = s.server->Submit(MakeRequest(3)).get();
      ASSERT_TRUE(f.ok) << f.error;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  WriteCheckpoint(11, 1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (s.reloader->stats().swaps == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  client.join();
  s.reloader->Stop();

  ASSERT_EQ(s.reloader->stats().swaps, 1) << "watcher never swapped";
  infer::Forecast after = s.server->Submit(MakeRequest(3)).get();
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.values, new_values);
}

}  // namespace
}  // namespace d2stgnn
