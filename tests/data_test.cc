#include "data/synthetic_traffic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/presets.h"
#include "data/scaler.h"
#include "data/sliding_window.h"

namespace d2stgnn {
namespace {

data::SyntheticTrafficOptions SmallOptions() {
  data::SyntheticTrafficOptions options;
  options.network.num_nodes = 10;
  options.network.neighbors = 3;
  options.num_steps = 2 * 288;
  options.seed = 5;
  return options;
}

TEST(SyntheticTraffic, DeterministicInSeed) {
  const auto a = data::GenerateSyntheticTraffic(SmallOptions());
  const auto b = data::GenerateSyntheticTraffic(SmallOptions());
  ASSERT_EQ(a.dataset.values.numel(), b.dataset.values.numel());
  for (int64_t i = 0; i < a.dataset.values.numel(); ++i) {
    EXPECT_FLOAT_EQ(a.dataset.values.At(i), b.dataset.values.At(i));
  }
}

TEST(SyntheticTraffic, DifferentSeedsDiffer) {
  auto options = SmallOptions();
  const auto a = data::GenerateSyntheticTraffic(options);
  options.seed = 6;
  const auto b = data::GenerateSyntheticTraffic(options);
  int64_t differing = 0;
  for (int64_t i = 0; i < a.dataset.values.numel(); ++i) {
    if (a.dataset.values.At(i) != b.dataset.values.At(i)) ++differing;
  }
  EXPECT_GT(differing, a.dataset.values.numel() / 2);
}

TEST(SyntheticTraffic, SpeedBoundedAndFlowIntegral) {
  auto options = SmallOptions();
  options.flow = false;
  const auto speed = data::GenerateSyntheticTraffic(options);
  for (float v : speed.dataset.values.Data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, options.free_flow_speed + 2.0f);
  }
  options.flow = true;
  const auto flow = data::GenerateSyntheticTraffic(options);
  for (float v : flow.dataset.values.Data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_FLOAT_EQ(v, std::round(v));
  }
}

TEST(SyntheticTraffic, TotalIsSuperpositionOfComponents) {
  // The generator's premise (paper Fig. 2): each series is inherent +
  // diffusion. Verify the latent components exist and the diffusion share
  // matches diffusion_strength roughly.
  const auto traffic = data::GenerateSyntheticTraffic(SmallOptions());
  double inh_sum = 0.0, dif_sum = 0.0;
  for (int64_t i = 0; i < traffic.inherent.numel(); ++i) {
    inh_sum += traffic.inherent.At(i);
    dif_sum += traffic.diffusion.At(i);
  }
  EXPECT_GT(inh_sum, 0.0);
  EXPECT_GT(dif_sum, 0.0);
  EXPECT_LT(dif_sum, inh_sum);  // gamma < 0.5 keeps diffusion the minority
}

TEST(SyntheticTraffic, DiffusionShareIsDynamicOverDay) {
  // Fig. 2(c): the diffusion intensity must vary with time of day.
  auto options = SmallOptions();
  options.num_steps = 6 * 288;
  const auto traffic = data::GenerateSyntheticTraffic(options);
  const int64_t n = traffic.dataset.num_nodes();
  auto share_at = [&](int64_t tod_lo, int64_t tod_hi) {
    double dif = 0.0, tot = 0.0;
    for (int64_t t = 0; t < traffic.dataset.num_steps(); ++t) {
      const int64_t tod = traffic.dataset.TimeOfDay(t);
      if (tod < tod_lo || tod >= tod_hi) continue;
      for (int64_t i = 0; i < n; ++i) {
        dif += traffic.diffusion.At(t * n + i);
        tot += traffic.diffusion.At(t * n + i) +
               traffic.inherent.At(t * n + i);
      }
    }
    return dif / tot;
  };
  const double rush = share_at(7 * 12, 9 * 12);    // 07:00-09:00
  const double night = share_at(1 * 12, 4 * 12);   // 01:00-04:00
  EXPECT_GT(rush, night * 1.2)
      << "rush " << rush << " vs night " << night;
}

TEST(SyntheticTraffic, WeekendsAreLighter) {
  auto options = SmallOptions();
  options.num_steps = 14 * 288;
  options.flow = true;
  options.failure_prob = 0.0f;
  const auto traffic = data::GenerateSyntheticTraffic(options);
  double weekday = 0.0, weekend = 0.0;
  int64_t weekday_n = 0, weekend_n = 0;
  const int64_t n = traffic.dataset.num_nodes();
  for (int64_t t = 0; t < traffic.dataset.num_steps(); ++t) {
    const bool is_weekend = traffic.dataset.DayOfWeek(t) >= 5;
    for (int64_t i = 0; i < n; ++i) {
      if (is_weekend) {
        weekend += traffic.dataset.values.At(t * n + i);
        ++weekend_n;
      } else {
        weekday += traffic.dataset.values.At(t * n + i);
        ++weekday_n;
      }
    }
  }
  EXPECT_GT(weekday / weekday_n, weekend / weekend_n);
}

TEST(SyntheticTraffic, SpeedDatasetsContainFailureZeros) {
  auto options = SmallOptions();
  options.num_steps = 10 * 288;
  options.failure_prob = 2e-3f;
  const auto traffic = data::GenerateSyntheticTraffic(options);
  int64_t zeros = 0;
  for (float v : traffic.dataset.values.Data()) {
    if (v == 0.0f) ++zeros;
  }
  EXPECT_GT(zeros, 0);
}

TEST(Presets, FullScaleMatchesTable2) {
  EXPECT_EQ(data::MetrLaOptions(1.0f).network.num_nodes, 207);
  EXPECT_EQ(data::MetrLaOptions(1.0f).num_steps, 34272);
  EXPECT_EQ(data::PemsBayOptions(1.0f).network.num_nodes, 325);
  EXPECT_EQ(data::PemsBayOptions(1.0f).num_steps, 52116);
  EXPECT_EQ(data::Pems04Options(1.0f).network.num_nodes, 307);
  EXPECT_EQ(data::Pems04Options(1.0f).num_steps, 16992);
  EXPECT_EQ(data::Pems08Options(1.0f).network.num_nodes, 170);
  EXPECT_EQ(data::Pems08Options(1.0f).num_steps, 17856);
  EXPECT_FALSE(data::MetrLaOptions(1.0f).flow);
  EXPECT_TRUE(data::Pems04Options(1.0f).flow);
}

TEST(Presets, ScaleShrinksButFloors) {
  const auto tiny = data::MetrLaOptions(0.01f);
  EXPECT_GE(tiny.network.num_nodes, 12);
  EXPECT_GE(tiny.num_steps, 16 * 288);
}

TEST(Scaler, NormalizesTrainRange) {
  Tensor values({4, 2}, {1, 2, 3, 4, 100, 100, 100, 100});
  data::StandardScaler scaler;
  scaler.Fit(values, /*train_steps=*/2, /*mask_zeros=*/false);
  EXPECT_NEAR(scaler.mean(), 2.5f, 1e-5f);
  const Tensor z = scaler.Transform(values);
  const Tensor back = scaler.InverseTransform(z);
  for (int64_t i = 0; i < values.numel(); ++i) {
    EXPECT_NEAR(back.At(i), values.At(i), 1e-3f);
  }
}

TEST(Scaler, MaskZerosExcludesFailures) {
  Tensor values({2, 2}, {10, 0, 10, 0});
  data::StandardScaler masked;
  masked.Fit(values, 2, /*mask_zeros=*/true);
  EXPECT_NEAR(masked.mean(), 10.0f, 1e-5f);
  data::StandardScaler unmasked;
  unmasked.Fit(values, 2, /*mask_zeros=*/false);
  EXPECT_NEAR(unmasked.mean(), 5.0f, 1e-5f);
}

TEST(SlidingWindow, SplitsAreChronologicalAndDisjoint) {
  const auto splits = data::MakeChronologicalSplits(1000, 12, 12, 0.7f, 0.1f);
  EXPECT_FALSE(splits.train.empty());
  EXPECT_FALSE(splits.val.empty());
  EXPECT_FALSE(splits.test.empty());
  // Train windows never read past the train boundary.
  EXPECT_LE(splits.train.back() + 24, 700);
  EXPECT_GE(splits.val.front(), 700);
  EXPECT_GE(splits.test.front(), 800);
  EXPECT_LE(splits.test.back() + 24, 1000);
}

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    traffic_ = data::GenerateSyntheticTraffic(SmallOptions());
    scaler_.Fit(traffic_.dataset.values, 400, true);
  }
  data::SyntheticTraffic traffic_;
  data::StandardScaler scaler_;
};

TEST_F(LoaderTest, BatchShapesAndChannels) {
  data::WindowDataLoader loader(&traffic_.dataset, &scaler_, {0, 5, 10, 15, 20},
                                12, 12, 2);
  EXPECT_EQ(loader.NumBatches(), 3);
  const data::Batch batch = loader.GetBatch(0);
  EXPECT_EQ(batch.x.shape(), (Shape{2, 12, 10, data::kInputFeatures}));
  EXPECT_EQ(batch.y.shape(), (Shape{2, 12, 10, 1}));
  EXPECT_EQ(batch.time_of_day.size(), 24u);
  // Final (ragged) batch.
  const data::Batch last = loader.GetBatch(2);
  EXPECT_EQ(last.x.size(0), 1);
}

TEST_F(LoaderTest, ChannelsCarryNormalizedValueAndTime) {
  data::WindowDataLoader loader(&traffic_.dataset, &scaler_, {37}, 12, 12, 1);
  const data::Batch batch = loader.GetBatch(0);
  const int64_t n = traffic_.dataset.num_nodes();
  for (int64_t t = 0; t < 12; ++t) {
    const float raw = traffic_.dataset.values.At((37 + t) * n + 3);
    const float expected = (raw - scaler_.mean()) / scaler_.std_dev();
    EXPECT_NEAR(batch.x.At({0, t, 3, 0}), expected, 1e-4f);
    EXPECT_NEAR(batch.x.At({0, t, 3, 1}),
                static_cast<float>(traffic_.dataset.TimeOfDay(37 + t)) /
                    static_cast<float>(traffic_.dataset.steps_per_day),
                1e-5f);
  }
  // Targets are raw values.
  EXPECT_FLOAT_EQ(batch.y.At({0, 0, 3, 0}),
                  traffic_.dataset.values.At((37 + 12) * n + 3));
}

TEST_F(LoaderTest, ShuffleKeepsSampleSet) {
  std::vector<int64_t> starts = {0, 3, 6, 9, 12, 15};
  data::WindowDataLoader loader(&traffic_.dataset, &scaler_, starts, 12, 12,
                                6);
  Rng rng(1);
  loader.Shuffle(rng);
  const data::Batch batch = loader.GetBatch(0);
  EXPECT_EQ(batch.batch_size, 6);
  EXPECT_EQ(loader.num_samples(), 6);
}

}  // namespace
}  // namespace d2stgnn
