// Tests of the extended substrate: Max/Min/Clamp/Gelu ops, LayerNorm, and
// the Huber loss.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "metrics/metrics.h"
#include "nn/layer_norm.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace d2stgnn {
namespace {

TEST(MaxMinOps, ValuesAlongDims) {
  Tensor a({2, 3}, {1, 5, 3, 9, 2, 4});
  Tensor row_max = Max(a, 1, false);
  EXPECT_EQ(row_max.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(row_max.At(0), 5.0f);
  EXPECT_FLOAT_EQ(row_max.At(1), 9.0f);
  Tensor col_min = Min(a, 0, true);
  EXPECT_EQ(col_min.shape(), (Shape{1, 3}));
  EXPECT_FLOAT_EQ(col_min.At(0), 1.0f);
  EXPECT_FLOAT_EQ(col_min.At(1), 2.0f);
  EXPECT_FLOAT_EQ(col_min.At(2), 3.0f);
}

TEST(MaxMinOps, GradientFlowsToArgmaxOnly) {
  Tensor a({1, 3}, {1.0f, 7.0f, 3.0f});
  a.SetRequiresGrad(true);
  Sum(Max(a, 1, false)).Backward();
  EXPECT_FLOAT_EQ(a.Grad().At(0), 0.0f);
  EXPECT_FLOAT_EQ(a.Grad().At(1), 1.0f);
  EXPECT_FLOAT_EQ(a.Grad().At(2), 0.0f);
}

TEST(MaxMinOps, GradCheck) {
  Rng rng(1);
  Tensor a = Tensor::Randn({4, 5}, rng).SetRequiresGrad(true);
  auto loss = [&] {
    return Add(Sum(Max(a, 1, false)),
               MulScalar(Sum(Min(a, 0, false)), 2.0f));
  };
  auto result = CheckGradients(loss, {a}, rng, 1e-3f);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

TEST(ClampOp, ValuesAndStraightThroughGrad) {
  Tensor a({4}, {-2.0f, -0.5f, 0.5f, 2.0f});
  a.SetRequiresGrad(true);
  Tensor c = Clamp(a, -1.0f, 1.0f);
  EXPECT_FLOAT_EQ(c.At(0), -1.0f);
  EXPECT_FLOAT_EQ(c.At(1), -0.5f);
  EXPECT_FLOAT_EQ(c.At(3), 1.0f);
  Sum(c).Backward();
  EXPECT_FLOAT_EQ(a.Grad().At(0), 0.0f);  // outside
  EXPECT_FLOAT_EQ(a.Grad().At(1), 1.0f);  // inside
  EXPECT_FLOAT_EQ(a.Grad().At(3), 0.0f);
}

TEST(GeluOp, KnownValuesAndGrad) {
  Tensor a({3}, {-10.0f, 0.0f, 10.0f});
  Tensor g = Gelu(a);
  EXPECT_NEAR(g.At(0), 0.0f, 1e-3f);   // strongly negative -> ~0
  EXPECT_NEAR(g.At(1), 0.0f, 1e-6f);   // gelu(0) = 0
  EXPECT_NEAR(g.At(2), 10.0f, 1e-3f);  // strongly positive -> identity
  Rng rng(2);
  Tensor x = Tensor::Randn({6}, rng).SetRequiresGrad(true);
  auto loss = [&] { return Sum(Gelu(x)); };
  auto result = CheckGradients(loss, {x}, rng, 1e-3f);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

TEST(LayerNormModule, NormalizesLastDim) {
  Rng rng(3);
  nn::LayerNorm norm(8);
  Tensor x = Tensor::Randn({4, 8}, rng, 5.0f, 3.0f);
  NoGradGuard no_grad;
  Tensor y = norm.Forward(x);
  // gamma=1, beta=0 at init: each row has ~zero mean, ~unit variance.
  for (int64_t r = 0; r < 4; ++r) {
    double mean = 0.0, var = 0.0;
    for (int64_t c = 0; c < 8; ++c) mean += y.At({r, c});
    mean /= 8.0;
    for (int64_t c = 0; c < 8; ++c) {
      var += (y.At({r, c}) - mean) * (y.At({r, c}) - mean);
    }
    var /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNormModule, GradCheck) {
  Rng rng(4);
  nn::LayerNorm norm(4);
  Tensor x = Tensor::Randn({3, 4}, rng).SetRequiresGrad(true);
  std::vector<Tensor> params = norm.Parameters();
  params.push_back(x);
  auto loss = [&] { return Sum(Abs(norm.Forward(x))); };
  auto result = CheckGradients(loss, params, rng, 1e-2f, 3e-2f);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

TEST(HuberLossTest, QuadraticInsideLinearOutside) {
  Tensor truth({2}, {0.0f + 1.0f, 1.0f});  // avoid mask value 0
  {
    // Small error: 0.5 e^2 behaviour.
    Tensor pred({2}, {1.5f, 1.5f});  // err = 0.5 each
    const float loss =
        metrics::MaskedHuberLoss(pred, truth, 1.0f, 0.0f).Item();
    EXPECT_NEAR(loss, 0.5f * 0.25f, 1e-6f);
  }
  {
    // Large error: delta(|e| - delta/2).
    Tensor pred({2}, {4.0f, 4.0f});  // err = 3 each
    const float loss =
        metrics::MaskedHuberLoss(pred, truth, 1.0f, 0.0f).Item();
    EXPECT_NEAR(loss, 1.0f * (3.0f - 0.5f), 1e-6f);
  }
}

TEST(HuberLossTest, MasksAndGradCheck) {
  Tensor pred({3}, {2.0f, 100.0f, 5.0f});
  pred.SetRequiresGrad(true);
  Tensor truth({3}, {1.0f, 0.0f, 1.0f});  // middle masked
  Tensor loss = metrics::MaskedHuberLoss(pred, truth, 1.0f);
  // entries: err 1 -> 0.5; masked; err 4 -> 3.5; mean over 2 valid = 2.0
  EXPECT_NEAR(loss.Item(), 2.0f, 1e-5f);
  loss.Backward();
  EXPECT_FLOAT_EQ(pred.Grad().At(1), 0.0f);

  Rng rng(5);
  Tensor p2 = Tensor::Rand({8}, rng, 2.0f, 8.0f).SetRequiresGrad(true);
  Tensor t2 = Tensor::Rand({8}, rng, 1.0f, 9.0f);
  auto loss_fn = [&] { return metrics::MaskedHuberLoss(p2, t2, 1.5f); };
  auto result = CheckGradients(loss_fn, {p2}, rng, 1e-3f);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

}  // namespace
}  // namespace d2stgnn
