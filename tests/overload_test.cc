// Unit tests of the serving overload policies: the admission controller
// (queue bound, token bucket, EWMA shed — all driven by one injected
// FakeClock, no sleeps), the degradation governor's immediate-escalate /
// hysteretic-recover state machine, and the client backoff schedule.

#include "infer/overload.h"

#include <chrono>
#include <string>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "infer/retry.h"

namespace d2stgnn {
namespace {

using infer::AdmissionController;
using infer::AdmissionDecision;
using infer::AdmissionOptions;
using infer::DegradeOptions;
using infer::OverloadGovernor;
using infer::OverloadTier;
using infer::RejectReason;

TEST(RejectReasonTest, NamesAreStableAndRetryabilityIsTyped) {
  EXPECT_STREQ(infer::RejectReasonName(RejectReason::kQueueFull),
               "queue_full");
  EXPECT_STREQ(infer::RejectReasonName(RejectReason::kRateLimited),
               "rate_limited");
  EXPECT_STREQ(infer::RejectReasonName(RejectReason::kShedLowPriority),
               "shed_low_priority");
  EXPECT_STREQ(infer::RejectReasonName(RejectReason::kDeadlineExceeded),
               "deadline_exceeded");

  EXPECT_TRUE(infer::IsRetryableReject(RejectReason::kQueueFull));
  EXPECT_TRUE(infer::IsRetryableReject(RejectReason::kRateLimited));
  EXPECT_TRUE(infer::IsRetryableReject(RejectReason::kOverloaded));
  EXPECT_TRUE(infer::IsRetryableReject(RejectReason::kShedLowPriority));
  EXPECT_FALSE(infer::IsRetryableReject(RejectReason::kBadRequest));
  EXPECT_FALSE(infer::IsRetryableReject(RejectReason::kDeadlineExceeded));
  EXPECT_FALSE(infer::IsRetryableReject(RejectReason::kShuttingDown));
  EXPECT_FALSE(infer::IsRetryableReject(RejectReason::kNone));
}

TEST(AdmissionControllerTest, QueueBoundRejectsWithDrainShapedHint) {
  AdmissionController admission{AdmissionOptions{}};

  EXPECT_TRUE(admission.Admit(/*depth=*/3, /*capacity=*/4).admitted);

  AdmissionDecision full = admission.Admit(/*depth=*/4, /*capacity=*/4);
  EXPECT_FALSE(full.admitted);
  EXPECT_EQ(full.reason, RejectReason::kQueueFull);
  // No batch observed yet: the hint falls back to 1ms per queued request.
  EXPECT_EQ(full.retry_after_us, 4000);

  // Once batches are observed, the hint tracks the EWMA drain estimate.
  admission.RecordBatch(/*batch_latency_us=*/800, /*batch_size=*/4);  // 200/rq
  full = admission.Admit(/*depth=*/4, /*capacity=*/4);
  EXPECT_EQ(full.retry_after_us, 800);

  // Unbounded capacity never trips the bound.
  EXPECT_TRUE(admission.Admit(/*depth=*/1 << 20, /*capacity=*/0).admitted);
}

TEST(AdmissionControllerTest, TokenBucketRefillsFromInjectedClock) {
  AdmissionOptions options;
  options.rate_rps = 10.0;  // one token per 100ms
  options.burst = 2.0;
  FakeClock clock;
  AdmissionController admission{options, &clock};

  // The bucket starts full: the burst passes, the next is limited.
  EXPECT_TRUE(admission.Admit(0, 0).admitted);
  EXPECT_TRUE(admission.Admit(0, 0).admitted);
  AdmissionDecision limited = admission.Admit(0, 0);
  EXPECT_FALSE(limited.admitted);
  EXPECT_EQ(limited.reason, RejectReason::kRateLimited);
  // An empty bucket refills a whole token in 100ms; the hint says so.
  EXPECT_GT(limited.retry_after_us, 90'000);
  EXPECT_LE(limited.retry_after_us, 110'000);

  // 100ms later (by the injected clock) one token is back.
  clock.Advance(std::chrono::milliseconds(100));
  EXPECT_TRUE(admission.Admit(0, 0).admitted);
  EXPECT_FALSE(admission.Admit(0, 0).admitted);

  // A long idle period refills only up to the burst cap, not beyond.
  clock.Advance(std::chrono::seconds(60));
  EXPECT_TRUE(admission.Admit(0, 0).admitted);
  EXPECT_TRUE(admission.Admit(0, 0).admitted);
  EXPECT_FALSE(admission.Admit(0, 0).admitted);
}

TEST(AdmissionControllerTest, EwmaShedTripsAndRecovers) {
  AdmissionOptions options;
  options.shed_latency_us = 1000;
  options.ewma_alpha = 0.5;
  AdmissionController admission{options};

  // Below budget: admitted.
  admission.RecordBatch(/*batch_latency_us=*/3200, /*batch_size=*/4);  // 800
  EXPECT_DOUBLE_EQ(admission.ewma_request_us(), 800.0);
  EXPECT_TRUE(admission.Admit(0, 0).admitted);

  // A slow batch blows the budget: 0.5*3000 + 0.5*800 = 1900 > 1000.
  admission.RecordBatch(/*batch_latency_us=*/12000, /*batch_size=*/4);
  EXPECT_DOUBLE_EQ(admission.ewma_request_us(), 1900.0);
  AdmissionDecision shed = admission.Admit(0, 0);
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, RejectReason::kOverloaded);
  EXPECT_GT(shed.retry_after_us, 0);

  // Fast batches pull the EWMA back under: admission resumes.
  admission.RecordBatch(/*batch_latency_us=*/400, /*batch_size=*/4);  // 1000
  admission.RecordBatch(/*batch_latency_us=*/400, /*batch_size=*/4);  // 550
  EXPECT_TRUE(admission.Admit(0, 0).admitted);
}

TEST(OverloadGovernorTest, EscalatesImmediatelyPerWatermark) {
  OverloadGovernor governor{DegradeOptions{}};
  EXPECT_EQ(governor.tier(), OverloadTier::kNormal);
  EXPECT_EQ(governor.Observe(49, 100), OverloadTier::kNormal);
  EXPECT_EQ(governor.Observe(50, 100), OverloadTier::kDegraded);
  EXPECT_EQ(governor.Observe(75, 100), OverloadTier::kCapped);
  EXPECT_EQ(governor.Observe(90, 100), OverloadTier::kShedding);
  EXPECT_EQ(governor.transitions(), 3);

  // One hot observation can skip tiers entirely.
  OverloadGovernor fresh{DegradeOptions{}};
  EXPECT_EQ(fresh.Observe(95, 100), OverloadTier::kShedding);
  EXPECT_EQ(fresh.transitions(), 1);
}

TEST(OverloadGovernorTest, RecoveryIsHystereticOneTierAtATime) {
  DegradeOptions options;
  options.recover_ticks = 3;
  OverloadGovernor governor{options};
  ASSERT_EQ(governor.Observe(95, 100), OverloadTier::kShedding);

  // Mid-pressure observations (above recover_watermark) do not recover,
  // no matter how many arrive.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(governor.Observe(40, 100), OverloadTier::kShedding);
  }
  // Calm observations below the recover watermark step down one tier per
  // recover_ticks run — never straight to kNormal.
  EXPECT_EQ(governor.Observe(10, 100), OverloadTier::kShedding);  // calm 1
  EXPECT_EQ(governor.Observe(10, 100), OverloadTier::kShedding);  // calm 2
  EXPECT_EQ(governor.Observe(10, 100), OverloadTier::kCapped);    // calm 3
  // A hot blip resets the calm streak.
  EXPECT_EQ(governor.Observe(10, 100), OverloadTier::kCapped);
  EXPECT_EQ(governor.Observe(10, 100), OverloadTier::kCapped);
  EXPECT_EQ(governor.Observe(40, 100), OverloadTier::kCapped);  // reset
  EXPECT_EQ(governor.Observe(10, 100), OverloadTier::kCapped);
  EXPECT_EQ(governor.Observe(10, 100), OverloadTier::kCapped);
  EXPECT_EQ(governor.Observe(10, 100), OverloadTier::kDegraded);
  EXPECT_EQ(governor.Observe(10, 100), OverloadTier::kDegraded);
  EXPECT_EQ(governor.Observe(10, 100), OverloadTier::kDegraded);
  EXPECT_EQ(governor.Observe(10, 100), OverloadTier::kNormal);
}

TEST(OverloadGovernorTest, InjectedDegradeFaultForcesShedding) {
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;
  fault::ArmFaultPoint("server.degrade", script);

  OverloadGovernor governor{DegradeOptions{}};
  // Even an unbounded queue (capacity 0, pressure undefined) degrades when
  // the chaos seam fires.
  EXPECT_EQ(governor.Observe(0, 0), OverloadTier::kShedding);
  EXPECT_EQ(governor.transitions(), 1);
  fault::DisarmAllFaultPoints();

  // Without the fault, unbounded pressure keeps whatever tier it had.
  EXPECT_EQ(governor.Observe(0, 0), OverloadTier::kShedding);
}

TEST(BackoffDelayTest, ExponentialCappedHintedAndJittered) {
  infer::RetryPolicy policy;
  policy.initial_backoff_us = 1000;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_us = 3000;
  policy.jitter = 0.0;

  // No jitter: the schedule is exact. 1ms, 2ms, then capped at 3ms.
  EXPECT_EQ(infer::BackoffDelayUs(policy, 1, 0, nullptr), 1000);
  EXPECT_EQ(infer::BackoffDelayUs(policy, 2, 0, nullptr), 2000);
  EXPECT_EQ(infer::BackoffDelayUs(policy, 3, 0, nullptr), 3000);
  EXPECT_EQ(infer::BackoffDelayUs(policy, 9, 0, nullptr), 3000);

  // A larger server hint dominates the exponential term.
  EXPECT_EQ(infer::BackoffDelayUs(policy, 1, 50'000, nullptr), 50'000);
  // A smaller one does not shrink it.
  EXPECT_EQ(infer::BackoffDelayUs(policy, 3, 10, nullptr), 3000);

  // Jitter stays inside +/- the configured fraction and is deterministic
  // for a given stream.
  policy.jitter = 0.25;
  Rng rng(123);
  for (int i = 0; i < 100; ++i) {
    const int64_t delay = infer::BackoffDelayUs(policy, 2, 0, &rng);
    EXPECT_GE(delay, 1500);
    EXPECT_LE(delay, 2500);
  }
  Rng replay_a(7);
  Rng replay_b(7);
  EXPECT_EQ(infer::BackoffDelayUs(policy, 2, 0, &replay_a),
            infer::BackoffDelayUs(policy, 2, 0, &replay_b));
}

}  // namespace
}  // namespace d2stgnn
