// Component-level tests of the baseline building blocks (the pieces that
// baselines_test.cc only exercises end-to-end).

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/dcrnn.h"
#include "baselines/graph_wavenet.h"
#include "baselines/mtgnn_lite.h"
#include "baselines/var.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "graph/sensor_graph.h"
#include "graph/transition.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace d2stgnn::baselines {
namespace {

graph::SensorNetwork MakeNetwork(int64_t n) {
  graph::SensorNetworkOptions options;
  options.num_nodes = n;
  options.neighbors = 2;
  Rng rng(41);
  return graph::BuildRandomSensorNetwork(options, rng);
}

TEST(DiffusionConvTest, IdentityTermOnly) {
  // With no supports, the layer is a plain linear map of x.
  Rng rng(1);
  DiffusionConv conv(3, 2, /*num_matrices=*/0, rng);
  Tensor x = Tensor::Randn({2, 4, 3}, rng);
  NoGradGuard no_grad;
  EXPECT_EQ(conv.Forward(x, {}).shape(), (Shape{2, 4, 2}));
}

TEST(DiffusionConvTest, SupportsStaticAndBatchedMatrices) {
  Rng rng(2);
  const auto net = MakeNetwork(5);
  const Tensor p = graph::ForwardTransition(net.adjacency);
  DiffusionConv conv(3, 4, /*num_matrices=*/1, rng);
  Tensor x = Tensor::Randn({2, 5, 3}, rng);
  NoGradGuard no_grad;
  // Static [N, N].
  const Tensor y_static = conv.Forward(x, {p});
  EXPECT_EQ(y_static.shape(), (Shape{2, 5, 4}));
  // Batched [B, N, N] broadcasting the same matrix must agree.
  const Tensor p_batched = BroadcastTo(Unsqueeze(p, 0), {2, 5, 5});
  const Tensor y_batched = conv.Forward(x, {p_batched});
  for (int64_t i = 0; i < y_static.numel(); ++i) {
    EXPECT_NEAR(y_static.At(i), y_batched.At(i), 1e-5f);
  }
}

TEST(DiffusionConvTest, GradCheckThroughSupports) {
  Rng rng(3);
  const auto net = MakeNetwork(4);
  const Tensor p = graph::ForwardTransition(net.adjacency);
  DiffusionConv conv(2, 2, 1, rng);
  Tensor x = Tensor::Randn({1, 4, 2}, rng).SetRequiresGrad(true);
  std::vector<Tensor> params = conv.Parameters();
  params.push_back(x);
  auto loss = [&] { return Sum(Abs(conv.Forward(x, {p}))); };
  auto result = CheckGradients(loss, params, rng, 1e-2f, 3e-2f, 10);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

TEST(DcgruCellTest, InterpolatesBetweenStateAndCandidate) {
  // The DCGRU output is u*h + (1-u)*c with u, c in (0,1)/(-1,1): starting
  // from h = 0 the next state is bounded by the tanh candidate.
  Rng rng(4);
  const auto net = MakeNetwork(4);
  const Tensor p = graph::ForwardTransition(net.adjacency);
  DcgruCell cell(1, 3, /*num_matrices=*/1, rng);
  Tensor x = Tensor::Randn({2, 4, 1}, rng);
  Tensor h = Tensor::Zeros({2, 4, 3});
  NoGradGuard no_grad;
  Tensor h2 = cell.Forward(x, h, {p});
  EXPECT_EQ(h2.shape(), (Shape{2, 4, 3}));
  for (float v : h2.Data()) {
    EXPECT_GT(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(DcgruCellTest, StatePersistsAcrossSteps) {
  // Feeding zeros after a strong input: the gated state decays smoothly
  // rather than resetting (the recurrence actually carries memory).
  Rng rng(5);
  const auto net = MakeNetwork(4);
  const Tensor p = graph::ForwardTransition(net.adjacency);
  DcgruCell cell(1, 3, 1, rng);
  NoGradGuard no_grad;
  Tensor h = Tensor::Zeros({1, 4, 3});
  h = cell.Forward(Tensor::Full({1, 4, 1}, 3.0f), h, {p});
  const Tensor after_input = h;
  h = cell.Forward(Tensor::Zeros({1, 4, 1}), h, {p});
  double corr = 0.0;
  for (int64_t i = 0; i < h.numel(); ++i) {
    corr += static_cast<double>(h.At(i)) * after_input.At(i);
  }
  EXPECT_GT(corr, 0.0) << "state was wiped by a zero input";
}

TEST(GraphWaveNetTest, AdaptiveAdjacencyIsRowStochastic) {
  Rng rng(6);
  const auto net = MakeNetwork(6);
  GraphWaveNet::Options options;
  options.hidden_dim = 8;
  options.embed_dim = 4;
  GraphWaveNet model(6, 12, net.adjacency, options, rng);
  NoGradGuard no_grad;
  const Tensor apt = model.AdaptiveAdjacency();
  ASSERT_EQ(apt.shape(), (Shape{6, 6}));
  for (int64_t i = 0; i < 6; ++i) {
    float row = 0.0f;
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_GE(apt.At({i, j}), 0.0f);
      row += apt.At({i, j});
    }
    EXPECT_NEAR(row, 1.0f, 1e-4f);
  }
}

TEST(MtgnnLiteTest, LearnedAdjacencyIsUniDirectional) {
  // MTGNN's skew construction: A and A^T cannot both have mass on the same
  // off-diagonal pair pre-softmax; after row-softmax the matrix is still
  // row-stochastic.
  Rng rng(7);
  MtgnnLite model(6, 8, 12, 4, rng);
  NoGradGuard no_grad;
  const Tensor adj = model.LearnedAdjacency();
  ASSERT_EQ(adj.shape(), (Shape{6, 6}));
  for (int64_t i = 0; i < 6; ++i) {
    float row = 0.0f;
    for (int64_t j = 0; j < 6; ++j) row += adj.At({i, j});
    EXPECT_NEAR(row, 1.0f, 1e-4f);
  }
}

TEST(VarBaselineTest, RecoversKnownArProcess) {
  // x_t = 0.8 x_{t-1} + noise on 2 independent nodes: a fitted VAR(2)
  // should forecast one step ahead much better than persistence-to-mean.
  Rng rng(8);
  const int64_t steps = 2000;
  std::vector<float> values(static_cast<size_t>(steps * 2));
  float s0 = 0.0f, s1 = 0.0f;
  for (int64_t t = 0; t < steps; ++t) {
    s0 = 0.8f * s0 + rng.Normal(0.0f, 1.0f);
    s1 = 0.8f * s1 + rng.Normal(0.0f, 1.0f);
    values[static_cast<size_t>(2 * t)] = s0 + 50.0f;
    values[static_cast<size_t>(2 * t + 1)] = s1 + 50.0f;
  }
  data::TimeSeriesDataset dataset;
  dataset.name = "ar";
  dataset.values = Tensor({steps, 2}, std::move(values));
  dataset.steps_per_day = 288;

  Var var(2, 1e-4f);
  var.Fit(dataset, 1600);
  std::vector<int64_t> starts;
  for (int64_t s = 1600; s + 24 <= steps; s += 7) starts.push_back(s);
  const Tensor pred = var.Predict(dataset, starts, 12, 12);

  double err = 0.0, base_err = 0.0;
  int64_t count = 0;
  for (size_t w = 0; w < starts.size(); ++w) {
    for (int64_t i = 0; i < 2; ++i) {
      const float truth = dataset.values.At((starts[w] + 12) * 2 + i);
      err += std::fabs(pred.At({static_cast<int64_t>(w), 0, i, 0}) - truth);
      base_err += std::fabs(50.0f - truth);
      ++count;
    }
  }
  EXPECT_LT(err / count, 0.75 * base_err / count)
      << "VAR failed to exploit the AR(1) structure";
}

}  // namespace
}  // namespace d2stgnn::baselines
