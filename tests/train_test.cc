#include "train/trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/d2stgnn.h"
#include "data/synthetic_traffic.h"
#include "nn/linear.h"
#include "train/evaluator.h"

namespace d2stgnn {
namespace {

// A deliberately simple model so trainer tests are fast: linear readout of
// the last frame, repeated across the horizon.
class TinyModel : public train::ForecastingModel {
 public:
  TinyModel(int64_t num_nodes, int64_t horizon, Rng& rng)
      : ForecastingModel("tiny"),
        num_nodes_(num_nodes),
        horizon_(horizon),
        proj_(data::kInputFeatures, horizon, rng) {
    RegisterChild(&proj_);
  }

  Tensor Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size;
    const Tensor last = Reshape(
        Slice(batch.x, 1, batch.input_len - 1, batch.input_len),
        {b, num_nodes_, data::kInputFeatures});
    Tensor out = proj_.Forward(last);    // [B, N, horizon]
    out = Permute(out, {0, 2, 1});
    return Reshape(out, {b, horizon_, num_nodes_, 1});
  }

  int64_t horizon() const override { return horizon_; }

 private:
  int64_t num_nodes_;
  int64_t horizon_;
  nn::Linear proj_;
};

class TrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticTrafficOptions options;
    options.network.num_nodes = 6;
    options.num_steps = 900;
    options.seed = 31;
    traffic_ = data::GenerateSyntheticTraffic(options);
    scaler_.Fit(traffic_.dataset.values, 600, true);
    splits_ = data::MakeChronologicalSplits(900, 12, 12, 0.7f, 0.1f);
    train_loader_ = std::make_unique<data::WindowDataLoader>(
        &traffic_.dataset, &scaler_, splits_.train, 12, 12, 32);
    val_loader_ = std::make_unique<data::WindowDataLoader>(
        &traffic_.dataset, &scaler_, splits_.val, 12, 12, 32);
  }

  data::SyntheticTraffic traffic_;
  data::StandardScaler scaler_;
  data::SplitWindows splits_;
  std::unique_ptr<data::WindowDataLoader> train_loader_;
  std::unique_ptr<data::WindowDataLoader> val_loader_;
};

TEST_F(TrainerTest, LossDecreasesOverEpochs) {
  Rng rng(1);
  TinyModel model(6, 12, rng);
  train::TrainerOptions options;
  options.epochs = 8;
  options.curriculum_learning = false;
  train::Trainer trainer(&model, &scaler_, options);
  const train::FitResult result =
      trainer.Fit(train_loader_.get(), val_loader_.get());
  ASSERT_GE(result.history.size(), 2u);
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
  EXPECT_GT(result.mean_epoch_seconds, 0.0);
}

TEST_F(TrainerTest, EarlyStoppingRestoresBestParams) {
  Rng rng(2);
  TinyModel model(6, 12, rng);
  train::TrainerOptions options;
  options.epochs = 60;
  options.patience = 3;
  // A large step size converges in a handful of epochs and then stalls, so
  // early stopping must trigger long before the epoch cap.
  options.learning_rate = 0.05f;
  train::Trainer trainer(&model, &scaler_, options);
  const train::FitResult result =
      trainer.Fit(train_loader_.get(), val_loader_.get());
  // Stopped early and the restored parameters reproduce the best
  // validation MAE.
  EXPECT_LT(static_cast<int64_t>(result.history.size()), 60);
  const auto val = trainer.Evaluate(val_loader_.get());
  EXPECT_NEAR(val.mae, result.best_val_mae, 1e-6);
}

TEST_F(TrainerTest, CurriculumSupervisesPrefixFirst) {
  // With curriculum on, the first epoch's train loss is computed on a
  // horizon prefix, which (for an untrained model) is not larger than the
  // full-horizon loss of the same model — weak but deterministic signal
  // that the slicing is active: just check training still converges and
  // runs with curriculum enabled.
  Rng rng(3);
  TinyModel model(6, 12, rng);
  train::TrainerOptions options;
  options.epochs = 6;
  options.curriculum_learning = true;
  train::Trainer trainer(&model, &scaler_, options);
  const train::FitResult result =
      trainer.Fit(train_loader_.get(), val_loader_.get());
  EXPECT_LT(result.history.back().validation.mae,
            result.history.front().validation.mae * 1.5);
}

TEST_F(TrainerTest, EvaluateIsDeterministicAndNoGrad) {
  Rng rng(4);
  TinyModel model(6, 12, rng);
  train::TrainerOptions options;
  train::Trainer trainer(&model, &scaler_, options);
  const auto a = trainer.Evaluate(val_loader_.get());
  const auto b = trainer.Evaluate(val_loader_.get());
  EXPECT_DOUBLE_EQ(a.mae, b.mae);
  for (const Tensor& p : model.Parameters()) {
    EXPECT_TRUE(p.GradData().empty());
  }
}

TEST_F(TrainerTest, EvaluateHorizonsOrdersDegradation) {
  // After training, later horizons cannot be (much) easier than earlier
  // ones on this data; mostly this asserts the per-horizon slicing indexes
  // the right steps. Train briefly and check all three horizons report.
  Rng rng(5);
  TinyModel model(6, 12, rng);
  train::TrainerOptions options;
  options.epochs = 5;
  train::Trainer trainer(&model, &scaler_, options);
  trainer.Fit(train_loader_.get(), val_loader_.get());
  const auto horizons =
      train::EvaluateHorizons(&model, &scaler_, val_loader_.get());
  ASSERT_EQ(horizons.size(), 3u);
  EXPECT_EQ(horizons[0].horizon, 3);
  EXPECT_EQ(horizons[2].horizon, 12);
  for (const auto& h : horizons) {
    EXPECT_GT(h.metrics.count, 0);
    EXPECT_TRUE(std::isfinite(h.metrics.mae));
  }
}

TEST_F(TrainerTest, CollectPredictionsShape) {
  Rng rng(6);
  TinyModel model(6, 12, rng);
  const Tensor preds = train::CollectPredictions(
      &model, &scaler_, val_loader_.get());
  EXPECT_EQ(preds.size(0), val_loader_->num_samples());
  EXPECT_EQ(preds.shape()[1], 12);
  EXPECT_EQ(preds.shape()[2], 6);
}

TEST_F(TrainerTest, D2StgnnIntegrationImprovesOverInit) {
  // Integration: the real model + trainer on real loaders, a few epochs.
  core::D2StgnnConfig config;
  config.num_nodes = 6;
  config.hidden_dim = 8;
  config.embed_dim = 4;
  config.num_layers = 1;
  config.num_heads = 2;
  Rng rng(7);
  core::D2Stgnn model(config, traffic_.dataset.network.adjacency, rng);
  train::TrainerOptions options;
  options.epochs = 3;
  train::Trainer trainer(&model, &scaler_, options);
  const auto before = trainer.Evaluate(val_loader_.get());
  trainer.Fit(train_loader_.get(), val_loader_.get());
  const auto after = trainer.Evaluate(val_loader_.get());
  EXPECT_LT(after.mae, before.mae);
}

}  // namespace
}  // namespace d2stgnn
