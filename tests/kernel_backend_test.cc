// Tests of the pluggable kernel-backend layer (DESIGN.md §15): registry
// selection and override semantics, per-op scalar-vs-avx2 parity at the
// declared ulp/relative tolerances across lane-boundary sizes (1, 7, 8, 9,
// 63, 64, 65 — below, at, and past the 8-float AVX2 lane and the 64-float
// unroll), forced-backend end-to-end forecast deltas on the paper's model,
// and cross-backend plan replay rejection (executor, verifier, and the
// session's per-backend plan-cache sharding).
//
// Every avx2-dependent test skips cleanly on hosts without AVX2+FMA, so the
// suite is green on any x86 or non-x86 machine.

#include "tensor/kernels/registry.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/d2stgnn.h"
#include "data/sliding_window.h"
#include "data/synthetic_traffic.h"
#include "exec/graph_capture.h"
#include "exec/plan_executor.h"
#include "exec/plan_mutator.h"
#include "exec/plan_verifier.h"
#include "infer/session.h"
#include "tensor/kernels/backend.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace d2stgnn {
namespace {

using kernels::BinaryKind;
using kernels::KernelBackend;
using kernels::UnaryKind;
using kernels::UnaryParams;

// Lane-boundary sizes: below/at/past one 8-float AVX2 vector and the
// 64-float blocks the tail-masked loops step by.
const int64_t kTailSizes[] = {1, 7, 8, 9, 63, 64, 65};

/// Units-in-last-place distance between two floats, treating the float line
/// as the integers its bit patterns map to monotonically. Equal values
/// (including +0 vs -0) are 0 ulp apart.
int64_t UlpDiff(float a, float b) {
  if (a == b) return 0;
  if (std::isnan(a) || std::isnan(b)) {
    return std::isnan(a) && std::isnan(b) ? 0
                                          : std::numeric_limits<int64_t>::max();
  }
  const int32_t ia = std::bit_cast<int32_t>(a);
  const int32_t ib = std::bit_cast<int32_t>(b);
  const int64_t la =
      ia >= 0 ? ia : -static_cast<int64_t>(ia & 0x7fffffff);
  const int64_t lb =
      ib >= 0 ? ib : -static_cast<int64_t>(ib & 0x7fffffff);
  return la > lb ? la - lb : lb - la;
}

TEST(UlpDiffTest, SanityOnKnownNeighbors) {
  EXPECT_EQ(UlpDiff(1.0f, 1.0f), 0);
  EXPECT_EQ(UlpDiff(0.0f, -0.0f), 0);
  EXPECT_EQ(UlpDiff(1.0f, std::nextafter(1.0f, 2.0f)), 1);
  EXPECT_EQ(UlpDiff(-1.0f, std::nextafter(-1.0f, -2.0f)), 1);
  // Crossing zero: one step each side of the origin.
  EXPECT_EQ(UlpDiff(std::nextafter(0.0f, 1.0f), std::nextafter(0.0f, -1.0f)),
            2);
}

// ---------------------------------------------------------------------------
// Registry: selection, override, and feature reporting.

TEST(BackendRegistryTest, ScalarIsListedFirstAndAlwaysAvailable) {
  const std::vector<std::string> names = kernels::AvailableBackendNames();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "scalar");
  for (const std::string& name : names) {
    std::string error;
    EXPECT_TRUE(kernels::SetActiveBackend(name, &error)) << error;
    EXPECT_EQ(kernels::ActiveBackend().name, name);
  }
  ASSERT_TRUE(kernels::SetActiveBackend(kernels::DetectedBackendName()));
}

TEST(BackendRegistryTest, UnknownBackendNameIsRejectedWithoutSideEffects) {
  const std::string before = kernels::ActiveBackend().name;
  std::string error;
  EXPECT_FALSE(kernels::SetActiveBackend("sse9000", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(kernels::ActiveBackend().name, before);
}

TEST(BackendRegistryTest, ScopedOverrideRestoresThePreviousBackend) {
  const std::string before = kernels::ActiveBackend().name;
  {
    kernels::ScopedBackendOverride scoped("scalar");
    ASSERT_TRUE(scoped.engaged());
    EXPECT_STREQ(kernels::ActiveBackend().name, "scalar");
  }
  EXPECT_EQ(kernels::ActiveBackend().name, before);
  {
    // An unavailable name must leave the active backend untouched.
    kernels::ScopedBackendOverride scoped("sse9000");
    EXPECT_FALSE(scoped.engaged());
    EXPECT_EQ(kernels::ActiveBackend().name, before);
  }
  EXPECT_EQ(kernels::ActiveBackend().name, before);
}

TEST(BackendRegistryTest, DetectionMatchesCpuFeatures) {
  const kernels::CpuFeatures& features = kernels::DetectCpuFeatures();
  const bool avx2_runnable = features.avx2 && features.fma;
  EXPECT_EQ(kernels::Avx2BackendOrNull() != nullptr, avx2_runnable);
  EXPECT_STREQ(kernels::DetectedBackendName(),
               avx2_runnable ? "avx2" : "scalar");

  const std::string summary = kernels::CpuFeatureSummary();
  EXPECT_EQ(summary.find("avx2") != std::string::npos, features.avx2);
  EXPECT_EQ(summary.find("fma") != std::string::npos, features.fma);
}

// ---------------------------------------------------------------------------
// Per-op parity: avx2 vs the scalar reference, at the declared tolerances,
// across lane-boundary sizes and a non-zero range start.

class BackendParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    avx2_ = kernels::Avx2BackendOrNull();
    if (avx2_ == nullptr) {
      GTEST_SKIP() << "AVX2+FMA unavailable; scalar is the only backend";
    }
    scalar_ = &kernels::ScalarBackend();
  }

  static std::vector<float> Normal(int64_t n, uint64_t seed) {
    Rng rng(seed);
    return rng.NormalVector(n, 0.0f, 1.0f);
  }

  static std::vector<float> Positive(int64_t n, uint64_t seed) {
    std::vector<float> v = Normal(n, seed);
    for (float& x : v) x = std::fabs(x) + 0.1f;
    return v;
  }

  const KernelBackend* scalar_ = nullptr;
  const KernelBackend* avx2_ = nullptr;
};

TEST_F(BackendParityTest, UnaryOpsWithinDeclaredUlp) {
  struct Case {
    UnaryKind kind;
    UnaryParams params;
    bool positive_input;
  };
  const Case cases[] = {
      {UnaryKind::kAddScalar, {0.5f, 0.0f}, false},
      {UnaryKind::kMulScalar, {1.5f, 0.0f}, false},
      {UnaryKind::kPowScalar, {2.5f, 0.0f}, true},
      {UnaryKind::kRelu, {}, false},
      {UnaryKind::kLeakyRelu, {0.1f, 0.0f}, false},
      {UnaryKind::kSigmoid, {}, false},
      {UnaryKind::kTanh, {}, false},
      {UnaryKind::kExp, {}, false},
      {UnaryKind::kLog, {}, true},
      {UnaryKind::kSqrt, {}, true},
      {UnaryKind::kAbs, {}, false},
      {UnaryKind::kGelu, {}, false},
      {UnaryKind::kClamp, {-0.5f, 0.5f}, false},
  };
  for (const Case& c : cases) {
    const int max_ulp = kernels::UnaryMaxUlp(c.kind);
    for (const int64_t n : kTailSizes) {
      const std::vector<float> a = c.positive_input
                                       ? Positive(n, 100 + n)
                                       : Normal(n, 100 + n);
      // A non-zero begin exercises the masked head the dispatcher's chunking
      // can hand a backend mid-buffer.
      for (const int64_t begin : {int64_t{0}, n > 4 ? int64_t{3} : int64_t{0}}) {
        std::vector<float> ref(n, -7.0f);
        std::vector<float> got(n, -7.0f);
        scalar_->ewise_unary(c.kind, c.params, a.data(), ref.data(), begin, n);
        avx2_->ewise_unary(c.kind, c.params, a.data(), got.data(), begin, n);
        for (int64_t i = begin; i < n; ++i) {
          EXPECT_LE(UlpDiff(ref[i], got[i]), max_ulp)
              << "kind=" << static_cast<int>(c.kind) << " n=" << n
              << " begin=" << begin << " i=" << i << " scalar=" << ref[i]
              << " avx2=" << got[i];
        }
      }
    }
  }
}

TEST_F(BackendParityTest, BinaryOpsAreBitwise) {
  for (const BinaryKind kind : {BinaryKind::kAdd, BinaryKind::kSub,
                                BinaryKind::kMul, BinaryKind::kDiv}) {
    ASSERT_EQ(kernels::BinaryMaxUlp(kind), 0);
    for (const int64_t n : kTailSizes) {
      const std::vector<float> a = Normal(n, 200 + n);
      const std::vector<float> b = Positive(n, 300 + n);
      std::vector<float> ref(n), got(n);
      scalar_->ewise_binary(kind, a.data(), b.data(), ref.data(), 0, n);
      avx2_->ewise_binary(kind, a.data(), b.data(), got.data(), 0, n);
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(ref[i], got[i])
            << "kind=" << static_cast<int>(kind) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST_F(BackendParityTest, BiasAddIsBitwise) {
  for (const int64_t n : kTailSizes) {
    const int64_t rows = 3;
    const std::vector<float> a = Normal(rows * n, 400 + n);
    const std::vector<float> bias = Normal(n, 500 + n);
    std::vector<float> ref(rows * n), got(rows * n);
    scalar_->bias_add(a.data(), bias.data(), ref.data(), 0, rows, n);
    avx2_->bias_add(a.data(), bias.data(), got.data(), 0, rows, n);
    EXPECT_EQ(ref, got) << "n=" << n;
  }
}

TEST_F(BackendParityTest, MatMulWithinRelativeTolerance) {
  for (const int64_t k : kTailSizes) {
    for (const int64_t n : kTailSizes) {
      const int64_t m = 3;
      const std::vector<float> a = Normal(m * k, 600 + k);
      const std::vector<float> b = Normal(k * n, 700 + n);
      std::vector<float> ref(m * n, 0.0f), got(m * n, 0.0f);
      scalar_->matmul_row_range(a.data(), b.data(), ref.data(), 0, m, k, n);
      avx2_->matmul_row_range(a.data(), b.data(), got.data(), 0, m, k, n);
      const float tol = kernels::MatMulRelTol(k);
      for (int64_t i = 0; i < m * n; ++i) {
        EXPECT_NEAR(ref[i], got[i], tol * (1.0f + std::fabs(ref[i])))
            << "k=" << k << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST_F(BackendParityTest, ReduceSumWithinRelativeTolerance) {
  for (const int64_t n : kTailSizes) {
    const std::vector<float> a = Normal(n, 800 + n);
    const double ref = scalar_->reduce_sum_range(a.data(), 0, n);
    const double got = avx2_->reduce_sum_range(a.data(), 0, n);
    // Both accumulate the same floats in double; only association differs.
    EXPECT_NEAR(ref, got, kernels::ReduceSumRelTol() * (1.0 + std::fabs(ref)) *
                              static_cast<double>(n))
        << "n=" << n;
  }
}

TEST_F(BackendParityTest, ReduceSumDimIsBitwise) {
  ASSERT_EQ(kernels::ReduceSumDimMaxUlp(), 0);
  for (const int64_t size : {int64_t{1}, int64_t{7}, int64_t{64}}) {
    for (const int64_t inner : kTailSizes) {
      const std::vector<float> a = Normal(size * inner, 900 + size + inner);
      std::vector<float> ref(inner), got(inner);
      scalar_->reduce_sum_dim_slice(a.data(), ref.data(), size, inner);
      avx2_->reduce_sum_dim_slice(a.data(), got.data(), size, inner);
      EXPECT_EQ(ref, got) << "size=" << size << " inner=" << inner;
    }
  }
}

TEST_F(BackendParityTest, SoftmaxWithinDeclaredUlp) {
  for (const int64_t size : {int64_t{1}, int64_t{7}, int64_t{65}}) {
    for (const int64_t inner : kTailSizes) {
      const std::vector<float> a = Normal(size * inner, 1000 + size + inner);
      std::vector<float> ref(size * inner), got(size * inner);
      scalar_->softmax_slice(a.data(), ref.data(), size, inner);
      avx2_->softmax_slice(a.data(), got.data(), size, inner);
      for (int64_t i = 0; i < size * inner; ++i) {
        EXPECT_LE(UlpDiff(ref[i], got[i]), kernels::SoftmaxMaxUlp())
            << "size=" << size << " inner=" << inner << " i=" << i
            << " scalar=" << ref[i] << " avx2=" << got[i];
      }
    }
  }
}

// Within one backend, the dispatcher's fixed chunk grid makes thread count
// invisible: the same op at 1 and 4 threads is bitwise identical.
TEST_F(BackendParityTest, SameBackendIsThreadCountDeterministic) {
  const int original_threads = GetNumThreads();
  for (const std::string& name : kernels::AvailableBackendNames()) {
    kernels::ScopedBackendOverride scoped(name);
    ASSERT_TRUE(scoped.engaged());
    Rng rng(17);
    const Tensor a = Tensor::Randn({64, 96}, rng);
    const Tensor b = Tensor::Randn({96, 96}, rng);
    SetNumThreads(1);
    const std::vector<float> serial = Sigmoid(MatMul(a, b)).Data();
    SetNumThreads(4);
    const std::vector<float> threaded = Sigmoid(MatMul(a, b)).Data();
    EXPECT_EQ(serial, threaded) << "backend=" << name;
  }
  SetNumThreads(original_threads);
}

// ---------------------------------------------------------------------------
// End-to-end on the paper's model + plan/backend interaction.

constexpr int64_t kNodes = 6;
constexpr int64_t kInputLen = 12;

class BackendSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    original_threads_ = GetNumThreads();
    data::SyntheticTrafficOptions options;
    options.network.num_nodes = kNodes;
    options.num_steps = 600;
    options.seed = 31;
    traffic_ = data::GenerateSyntheticTraffic(options);
    scaler_.Fit(traffic_.dataset.values, 400, true);
  }

  void TearDown() override { SetNumThreads(original_threads_); }

  infer::SessionOptions Options() const {
    infer::SessionOptions options;
    options.num_nodes = kNodes;
    options.input_len = kInputLen;
    options.steps_per_day = traffic_.dataset.steps_per_day;
    return options;
  }

  infer::ForecastRequest MakeRequest(int64_t start) const {
    infer::ForecastRequest request;
    const std::vector<float>& values = traffic_.dataset.values.Data();
    request.window.assign(values.data() + start * kNodes,
                          values.data() + (start + kInputLen) * kNodes);
    request.time_of_day = traffic_.dataset.TimeOfDay(start);
    request.day_of_week = traffic_.dataset.DayOfWeek(start);
    return request;
  }

  std::vector<infer::ForecastRequest> Requests(int64_t count) const {
    std::vector<infer::ForecastRequest> requests;
    for (int64_t i = 0; i < count; ++i) requests.push_back(MakeRequest(i * 3));
    return requests;
  }

  std::unique_ptr<core::D2Stgnn> NewModel(uint64_t seed) const {
    core::D2StgnnConfig config;
    config.num_nodes = kNodes;
    config.input_len = kInputLen;
    config.output_len = 3;
    config.hidden_dim = 8;
    config.embed_dim = 4;
    config.num_layers = 1;
    config.num_heads = 2;
    config.steps_per_day = traffic_.dataset.steps_per_day;
    Rng rng(seed);
    return std::make_unique<core::D2Stgnn>(
        config, traffic_.dataset.network.adjacency, rng);
  }

  /// Serves `requests` eagerly on a fresh seed-7 model under `backend`.
  std::vector<infer::Forecast> ServeUnder(
      const std::string& backend,
      const std::vector<infer::ForecastRequest>& requests) {
    kernels::ScopedBackendOverride scoped(backend);
    EXPECT_TRUE(scoped.engaged());
    infer::SessionOptions options = Options();
    options.use_plans = false;
    auto session =
        infer::InferenceSession::Wrap(NewModel(7), scaler_, options);
    EXPECT_NE(session, nullptr);
    return session->PredictRequests(requests);
  }

  data::SyntheticTraffic traffic_;
  data::StandardScaler scaler_;
  int original_threads_ = 0;
};

class BackendSessionThreadsTest : public BackendSessionTest,
                                  public ::testing::WithParamInterface<int> {};

// Forced-backend A/B on the full D2STGNN forward: the mean absolute forecast
// delta between scalar and avx2 must stay below 1e-3 of the signal scale —
// per-op ulp bounds must not compound into a visible accuracy change.
TEST_P(BackendSessionThreadsTest, ForcedBackendForecastDeltaIsNegligible) {
  if (kernels::Avx2BackendOrNull() == nullptr) {
    GTEST_SKIP() << "AVX2+FMA unavailable; nothing to compare";
  }
  SetNumThreads(GetParam());
  const std::vector<infer::ForecastRequest> requests = Requests(4);
  const std::vector<infer::Forecast> scalar = ServeUnder("scalar", requests);
  const std::vector<infer::Forecast> avx2 = ServeUnder("avx2", requests);

  ASSERT_EQ(scalar.size(), avx2.size());
  double abs_delta = 0.0;
  double abs_ref = 0.0;
  int64_t count = 0;
  for (size_t i = 0; i < scalar.size(); ++i) {
    ASSERT_TRUE(scalar[i].ok) << scalar[i].error;
    ASSERT_TRUE(avx2[i].ok) << avx2[i].error;
    ASSERT_EQ(scalar[i].values.size(), avx2[i].values.size());
    for (size_t j = 0; j < scalar[i].values.size(); ++j) {
      abs_delta += std::fabs(scalar[i].values[j] - avx2[i].values[j]);
      abs_ref += std::fabs(scalar[i].values[j]);
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  const double mae_delta = abs_delta / static_cast<double>(count);
  const double scale = abs_ref / static_cast<double>(count);
  EXPECT_LE(mae_delta, 1e-3 * (1.0 + scale))
      << "mean |scalar - avx2| = " << mae_delta << " at signal scale "
      << scale;
}

INSTANTIATE_TEST_SUITE_P(Threads, BackendSessionThreadsTest,
                         ::testing::Values(1, 4));

// A plan captured under one backend refuses to replay under another: the
// recorded closures bind the capture-time backend, so the executor rejects
// with kBackendMismatch instead of silently mixing kernels.
TEST_F(BackendSessionTest, PlanReplayRejectsCrossBackendExecution) {
  if (kernels::Avx2BackendOrNull() == nullptr) {
    GTEST_SKIP() << "AVX2+FMA unavailable; no second backend to cross";
  }
  NoGradGuard no_grad;
  Rng rng(5);
  const Tensor x = Tensor::Randn({4, 9}, rng);
  const Tensor w = Tensor::Randn({9, 9}, rng);

  std::shared_ptr<const exec::ExecutionPlan> plan;
  {
    kernels::ScopedBackendOverride scoped("scalar");
    ASSERT_TRUE(scoped.engaged());
    exec::GraphCapture capture;
    capture.BindInput("x", x);
    const Tensor out = Sigmoid(MatMul(x, w));
    plan = capture.Finish(out);
    ASSERT_NE(plan, nullptr) << capture.error();
  }
  EXPECT_EQ(plan->backend_name(), "scalar");

  exec::PlanExecutor executor(plan);
  const std::vector<exec::InputBinding> bindings = {
      {x.Data().data(), x.numel()}};
  {
    kernels::ScopedBackendOverride scoped("avx2");
    ASSERT_TRUE(scoped.engaged());
    std::string error;
    EXPECT_EQ(executor.Run(bindings, {}, exec::ReplayMode::kSerial, &error),
              exec::ReplayStatus::kBackendMismatch);
    EXPECT_NE(error.find("scalar"), std::string::npos) << error;
  }
  {
    kernels::ScopedBackendOverride scoped("scalar");
    ASSERT_TRUE(scoped.engaged());
    EXPECT_EQ(executor.Run(bindings, {}, exec::ReplayMode::kSerial),
              exec::ReplayStatus::kOk);
  }
}

// The kCorruptBackend mutation is caught twice over: statically by the
// verifier (kUnknownBackend) and dynamically by the executor
// (kBackendMismatch). Runs on every host — no avx2 required.
TEST_F(BackendSessionTest, CorruptBackendNameIsCaughtStaticallyAndAtReplay) {
  NoGradGuard no_grad;
  Rng rng(5);
  const Tensor x = Tensor::Randn({4, 9}, rng);
  const Tensor w = Tensor::Randn({9, 9}, rng);
  exec::GraphCapture capture;
  capture.BindInput("x", x);
  const Tensor out = Relu(MatMul(x, w));
  const auto plan = capture.Finish(out);
  ASSERT_NE(plan, nullptr) << capture.error();
  ASSERT_TRUE(exec::VerifyPlan(*plan).ok());

  const auto mutant =
      exec::MutatePlan(*plan, exec::PlanMutation::kCorruptBackend);
  ASSERT_NE(mutant, nullptr);
  const exec::VerifierReport report = exec::VerifyPlan(*mutant);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCode(exec::DiagCode::kUnknownBackend))
      << report.ToString();

  exec::PlanExecutor executor(mutant);
  std::string error;
  EXPECT_EQ(executor.Run({{x.Data().data(), x.numel()}}, {},
                         exec::ReplayMode::kSerial, &error),
            exec::ReplayStatus::kBackendMismatch);
}

// The session keys its plan cache by backend: after a backend switch the old
// shard is invisible (requests fall back to eager instead of replaying — or
// rejecting — a foreign-backend plan), a Warmup captures a fresh plan into
// the new shard, and switching back replays the original shard bitwise.
TEST_F(BackendSessionTest, SessionShardsPlanCacheByBackend) {
  if (kernels::Avx2BackendOrNull() == nullptr) {
    GTEST_SKIP() << "AVX2+FMA unavailable; single shard only";
  }
  SetNumThreads(1);
  infer::SessionOptions options = Options();
  options.verify_plans = true;
  auto session = infer::InferenceSession::Wrap(NewModel(7), scaler_, options);
  ASSERT_NE(session, nullptr);
  const std::vector<infer::ForecastRequest> requests = Requests(4);

  kernels::ScopedBackendOverride outer("scalar");
  ASSERT_TRUE(outer.engaged());
  session->Warmup(/*batch_size=*/4, /*runs=*/1);
  EXPECT_EQ(session->session_stats().plans_built, 1);
  EXPECT_EQ(session->planned_batch_sizes(), std::vector<int64_t>{4});
  const std::vector<infer::Forecast> scalar_served =
      session->PredictRequests(requests);

  {
    kernels::ScopedBackendOverride inner("avx2");
    ASSERT_TRUE(inner.engaged());
    // The scalar shard is invisible here: no planned sizes, and a request
    // serves eagerly instead of touching the foreign-backend plan.
    EXPECT_EQ(session->planned_batch_sizes(), std::vector<int64_t>{});
    const infer::SessionStats pre = session->session_stats();
    const std::vector<infer::Forecast> eager_served =
        session->PredictRequests(requests);
    EXPECT_EQ(session->session_stats().eager_forwards,
              pre.eager_forwards + 1);
    EXPECT_EQ(session->session_stats().plan_replays, pre.plan_replays);
    ASSERT_EQ(eager_served.size(), scalar_served.size());
    for (size_t i = 0; i < eager_served.size(); ++i) {
      ASSERT_TRUE(eager_served[i].ok) << eager_served[i].error;
    }

    // Warming up under avx2 captures into the avx2 shard.
    session->Warmup(/*batch_size=*/4, /*runs=*/1);
    EXPECT_EQ(session->session_stats().plans_built, 2);
    EXPECT_EQ(session->planned_batch_sizes(), std::vector<int64_t>{4});
  }

  // Back on scalar, the original shard replays bitwise — no recapture.
  const infer::SessionStats before = session->session_stats();
  const std::vector<infer::Forecast> again =
      session->PredictRequests(requests);
  EXPECT_EQ(session->session_stats().plans_built, before.plans_built);
  ASSERT_EQ(again.size(), scalar_served.size());
  for (size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].values, scalar_served[i].values) << "request " << i;
  }
}

}  // namespace
}  // namespace d2stgnn
