// Tests of fault-tolerant training: full-state checkpoints, bitwise
// interrupted-then-resumed runs (cooperative stop and SIGKILL crash, at 1
// and 4 threads), retention, and v1 back-compat.

#include "train/checkpoint.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <fstream>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "data/sliding_window.h"
#include "data/synthetic_traffic.h"
#include "nn/linear.h"
#include "train/trainer.h"

namespace d2stgnn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Creates (or empties) a per-test checkpoint directory, so stale files from
// a previous run can never satisfy LatestCheckpoint.
std::string MakeCleanDir(const std::string& name) {
  const std::string dir = TempPath(name);
  ::mkdir(dir.c_str(), 0755);
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* entry = ::readdir(d)) {
      if (entry->d_name[0] == '.') continue;
      ::unlink((dir + "/" + entry->d_name).c_str());
    }
    ::closedir(d);
  }
  return dir;
}

int64_t CountFilesWithPrefix(const std::string& dir,
                             const std::string& prefix) {
  int64_t count = 0;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* entry = ::readdir(d)) {
      if (std::strncmp(entry->d_name, prefix.c_str(), prefix.size()) == 0) {
        ++count;
      }
    }
    ::closedir(d);
  }
  return count;
}

// Same tiny model as train_test.cc: linear readout of the last frame, so
// full training runs finish in milliseconds.
class TinyModel : public train::ForecastingModel {
 public:
  TinyModel(int64_t num_nodes, int64_t horizon, Rng& rng)
      : ForecastingModel("tiny"),
        num_nodes_(num_nodes),
        horizon_(horizon),
        proj_(data::kInputFeatures, horizon, rng) {
    RegisterChild(&proj_);
  }

  Tensor Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size;
    const Tensor last = Reshape(
        Slice(batch.x, 1, batch.input_len - 1, batch.input_len),
        {b, num_nodes_, data::kInputFeatures});
    Tensor out = proj_.Forward(last);
    out = Permute(out, {0, 2, 1});
    return Reshape(out, {b, horizon_, num_nodes_, 1});
  }

  int64_t horizon() const override { return horizon_; }

 private:
  int64_t num_nodes_;
  int64_t horizon_;
  nn::Linear proj_;
};

class CheckpointResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    original_threads_ = GetNumThreads();
    data::SyntheticTrafficOptions options;
    options.network.num_nodes = 6;
    options.num_steps = 600;
    options.seed = 31;
    traffic_ = data::GenerateSyntheticTraffic(options);
    scaler_.Fit(traffic_.dataset.values, 400, true);
    splits_ = data::MakeChronologicalSplits(600, 12, 12, 0.7f, 0.1f);
    train_loader_ = std::make_unique<data::WindowDataLoader>(
        &traffic_.dataset, &scaler_, splits_.train, 12, 12, 32);
    val_loader_ = std::make_unique<data::WindowDataLoader>(
        &traffic_.dataset, &scaler_, splits_.val, 12, 12, 32);
  }

  void TearDown() override {
    fault::DisarmAllFaultPoints();
    train::ClearStopRequest();
    SetNumThreads(original_threads_);
  }

  // Options every run in a comparison must share: the curriculum step is
  // pinned (the auto value depends on options.epochs, which differs between
  // an interrupted part-run and the reference) and early stopping is off.
  train::TrainerOptions BaseOptions() const {
    train::TrainerOptions options;
    options.epochs = 6;
    options.curriculum_step = 5;
    options.patience = 0;
    return options;
  }

  train::FitResult RunTraining(const train::TrainerOptions& options,
                               std::vector<std::vector<float>>* final_params) {
    // Fresh loaders per run: Shuffle permutes the loader's window order in
    // place, and a resumed process starts from pristine loaders too.
    data::WindowDataLoader train_loader(&traffic_.dataset, &scaler_,
                                        splits_.train, 12, 12, 32);
    data::WindowDataLoader val_loader(&traffic_.dataset, &scaler_,
                                      splits_.val, 12, 12, 32);
    Rng rng(5);
    TinyModel model(6, 12, rng);
    train::Trainer trainer(&model, &scaler_, options);
    const train::FitResult result = trainer.Fit(&train_loader, &val_loader);
    if (final_params != nullptr) {
      final_params->clear();
      for (const Tensor& p : model.Parameters()) {
        final_params->push_back(p.Data());
      }
    }
    return result;
  }

  // The bitwise-identity assertion shared by every resume test: exact float
  // equality of all parameters and of the per-epoch history (train loss and
  // validation metrics; seconds are wall-clock and excluded).
  void ExpectBitwiseEqual(const std::vector<std::vector<float>>& a,
                          const std::vector<std::vector<float>>& b,
                          const std::vector<train::EpochStats>& ha,
                          const std::vector<train::EpochStats>& hb) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].size(), b[i].size());
      for (size_t j = 0; j < a[i].size(); ++j) {
        ASSERT_EQ(a[i][j], b[i][j]) << "param " << i << " element " << j;
      }
    }
    ASSERT_EQ(ha.size(), hb.size());
    for (size_t e = 0; e < ha.size(); ++e) {
      EXPECT_EQ(ha[e].train_loss, hb[e].train_loss) << "epoch " << e;
      EXPECT_EQ(ha[e].validation.mae, hb[e].validation.mae) << "epoch " << e;
      EXPECT_EQ(ha[e].validation.rmse, hb[e].validation.rmse);
      EXPECT_EQ(ha[e].validation.mape, hb[e].validation.mape);
    }
  }

  // Trains 3 epochs with checkpointing, then resumes the newest checkpoint
  // to the full 6 in a second Trainer, and demands bitwise identity with an
  // uninterrupted 6-epoch run.
  void RunEpochBoundaryResume(int threads, const std::string& dir_name) {
    SetNumThreads(threads);
    const std::string dir = MakeCleanDir(dir_name);

    std::vector<std::vector<float>> reference_params;
    const train::FitResult reference =
        RunTraining(BaseOptions(), &reference_params);
    ASSERT_EQ(reference.stop_reason, train::StopReason::kCompleted);

    train::TrainerOptions part1 = BaseOptions();
    part1.epochs = 3;
    part1.checkpoint_dir = dir;
    RunTraining(part1, nullptr);
    const std::string latest = train::LatestCheckpoint(dir);
    ASSERT_FALSE(latest.empty());

    train::TrainerOptions part2 = BaseOptions();
    part2.resume_from = latest;
    std::vector<std::vector<float>> resumed_params;
    const train::FitResult resumed = RunTraining(part2, &resumed_params);
    ASSERT_EQ(resumed.stop_reason, train::StopReason::kCompleted);
    EXPECT_EQ(resumed.start_epoch, 3);
    ExpectBitwiseEqual(reference_params, resumed_params, reference.history,
                       resumed.history);
  }

  data::SyntheticTraffic traffic_;
  data::StandardScaler scaler_;
  data::SplitWindows splits_;
  std::unique_ptr<data::WindowDataLoader> train_loader_;
  std::unique_ptr<data::WindowDataLoader> val_loader_;
  int original_threads_ = 0;
};

TEST_F(CheckpointResumeTest, EpochBoundaryResumeIsBitwiseSingleThread) {
  RunEpochBoundaryResume(1, "resume_1t");
}

TEST_F(CheckpointResumeTest, EpochBoundaryResumeIsBitwiseFourThreads) {
  RunEpochBoundaryResume(4, "resume_4t");
}

TEST_F(CheckpointResumeTest, MidEpochInterruptResumeIsBitwise) {
  const std::string dir = MakeCleanDir("resume_interrupt");
  std::vector<std::vector<float>> reference_params;
  const train::FitResult reference =
      RunTraining(BaseOptions(), &reference_params);

  // A spinner keeps the stop flag raised, so Fit honors it right after the
  // first completed batch — a mid-epoch interrupt with a partial loss sum.
  train::TrainerOptions part1 = BaseOptions();
  part1.checkpoint_dir = dir;
  std::atomic<bool> done{false};
  std::thread spinner([&done] {
    while (!done.load()) train::RequestStop();
  });
  const train::FitResult interrupted = RunTraining(part1, nullptr);
  done.store(true);
  spinner.join();
  train::ClearStopRequest();
  ASSERT_EQ(interrupted.stop_reason, train::StopReason::kInterrupted);
  ASSERT_FALSE(interrupted.interrupt_checkpoint.empty());

  train::TrainerOptions part2 = BaseOptions();
  part2.resume_from = interrupted.interrupt_checkpoint;
  std::vector<std::vector<float>> resumed_params;
  const train::FitResult resumed = RunTraining(part2, &resumed_params);
  ASSERT_EQ(resumed.stop_reason, train::StopReason::kCompleted);
  ExpectBitwiseEqual(reference_params, resumed_params, reference.history,
                     resumed.history);
}

TEST_F(CheckpointResumeTest, FullStateRoundTrip) {
  const std::string dir = MakeCleanDir("roundtrip_state");
  train::TrainerOptions options = BaseOptions();
  options.epochs = 2;
  options.checkpoint_dir = dir;
  RunTraining(options, nullptr);

  const std::string latest = train::LatestCheckpoint(dir);
  ASSERT_FALSE(latest.empty());
  Rng rng(99);  // different init; overwritten by the load
  TinyModel model(6, 12, rng);
  train::TrainingCheckpoint state;
  ASSERT_TRUE(train::LoadTrainingCheckpoint(&model, &state, latest));
  EXPECT_EQ(state.optimizer.type, "adam");
  EXPECT_GT(state.optimizer.step_count, 0);
  ASSERT_EQ(state.optimizer.slots.size(), 2u);
  EXPECT_EQ(state.optimizer.slots[0].first, "m");
  EXPECT_EQ(state.optimizer.slots[1].first, "v");
  EXPECT_EQ(state.progress.next_epoch, 2);
  EXPECT_EQ(state.progress.next_batch, 0);
  EXPECT_GT(state.progress.updates, 0);
  EXPECT_EQ(state.progress.curriculum_step, 5);
  ASSERT_EQ(state.progress.history.size(), 2u);
  EXPECT_GT(state.progress.history[0].train_loss, 0.0);
  EXPECT_FALSE(state.best_params.empty());

  // The same file also serves a model-only load.
  Rng rng2(100);
  TinyModel model2(6, 12, rng2);
  EXPECT_TRUE(train::LoadCheckpoint(&model2, latest));
}

TEST_F(CheckpointResumeTest, ResumeRejectsModelOnlyCheckpoint) {
  Rng rng(1);
  TinyModel model(6, 12, rng);
  const std::string path = TempPath("model_only.d2ck");
  ASSERT_TRUE(train::SaveCheckpoint(model, path));
  train::TrainingCheckpoint state;
  EXPECT_FALSE(train::LoadTrainingCheckpoint(&model, &state, path));

  train::TrainerOptions options = BaseOptions();
  options.resume_from = path;
  const train::FitResult result = RunTraining(options, nullptr);
  EXPECT_EQ(result.stop_reason, train::StopReason::kResumeFailed);
  EXPECT_TRUE(result.history.empty());
}

TEST_F(CheckpointResumeTest, RetentionKeepsLastNPlusBest) {
  const std::string dir = MakeCleanDir("retention");
  train::TrainerOptions options = BaseOptions();
  options.checkpoint_dir = dir;
  options.keep_checkpoints = 2;
  RunTraining(options, nullptr);
  EXPECT_EQ(CountFilesWithPrefix(dir, "ckpt-"), 2);
  EXPECT_EQ(CountFilesWithPrefix(dir, "best.d2ck"), 1);
  // The survivors are the newest ones.
  const std::string latest = train::LatestCheckpoint(dir);
  Rng rng(1);
  TinyModel model(6, 12, rng);
  train::TrainingCheckpoint state;
  ASSERT_TRUE(train::LoadTrainingCheckpoint(&model, &state, latest));
  EXPECT_EQ(state.progress.next_epoch, 6);
}

TEST_F(CheckpointResumeTest, V1CheckpointStillLoads) {
  // Hand-rolled v1 file: magic + u64 count + per-param {u64 name_len, name,
  // u64 numel, floats} — the format every pre-v2 file on disk has.
  Rng rng(4);
  nn::Linear layer(3, 2, rng);
  std::vector<uint8_t> bytes;
  const auto append_u64 = [&bytes](uint64_t v) {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof(v));
  };
  const char magic[8] = {'D', '2', 'C', 'K', 'P', 'T', '0', '1'};
  bytes.insert(bytes.end(), magic, magic + sizeof(magic));
  const auto params = layer.NamedParameters();
  append_u64(params.size());
  for (const auto& [name, tensor] : params) {
    append_u64(name.size());
    bytes.insert(bytes.end(), name.begin(), name.end());
    append_u64(tensor.Data().size());
    const uint8_t* p =
        reinterpret_cast<const uint8_t*>(tensor.Data().data());
    bytes.insert(bytes.end(), p, p + tensor.Data().size() * sizeof(float));
  }
  const std::string path = TempPath("legacy_v1.ckpt");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  Rng rng2(77);
  nn::Linear loaded(3, 2, rng2);
  ASSERT_TRUE(train::LoadCheckpoint(&loaded, path));
  const auto a = layer.Parameters();
  const auto b = loaded.Parameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < a[i].Data().size(); ++j) {
      EXPECT_EQ(a[i].Data()[j], b[i].Data()[j]);
    }
  }
  // A v1 file can never seed a resume (no training state).
  train::TrainingCheckpoint state;
  EXPECT_FALSE(train::LoadTrainingCheckpoint(&loaded, &state, path));
}

// SIGKILL mid-epoch (the real crash, not a cooperative stop): the child is
// killed between two batches of epoch 1; the parent resumes from the last
// epoch-boundary checkpoint and must match the uninterrupted run bitwise.
using CheckpointResumeDeathTest = CheckpointResumeTest;

TEST_F(CheckpointResumeDeathTest, SigkillMidEpochThenResumeIsBitwise) {
  // The process-wide thread pool does not survive fork; re-exec the child.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string dir = MakeCleanDir("sigkill_resume");
  const int64_t num_batches = train_loader_->NumBatches();
  ASSERT_GT(num_batches, 1);

  std::vector<std::vector<float>> reference_params;
  const train::FitResult reference =
      RunTraining(BaseOptions(), &reference_params);

  // Crash at the start of the middle batch of epoch 1: epoch 0 completed,
  // so exactly one periodic checkpoint exists.
  EXPECT_EXIT(
      {
        fault::ArmFaultPoint(
            "trainer.batch",
            {fault::FaultKind::kCrash, num_batches + num_batches / 2});
        train::TrainerOptions options = BaseOptions();
        options.checkpoint_dir = dir;
        RunTraining(options, nullptr);
      },
      ::testing::KilledBySignal(SIGKILL), "");

  const std::string latest = train::LatestCheckpoint(dir);
  ASSERT_FALSE(latest.empty());
  train::TrainerOptions resume = BaseOptions();
  resume.resume_from = latest;
  std::vector<std::vector<float>> resumed_params;
  const train::FitResult resumed = RunTraining(resume, &resumed_params);
  ASSERT_EQ(resumed.stop_reason, train::StopReason::kCompleted);
  EXPECT_EQ(resumed.start_epoch, 1);
  ExpectBitwiseEqual(reference_params, resumed_params, reference.history,
                     resumed.history);
}

}  // namespace
}  // namespace d2stgnn
