// Tests of the durable-I/O layer and the fault-injection harness: CRC32,
// atomic writes, scripted short writes / ENOSPC / crash-at-offset against
// checkpoint saves, bit-flip rejection, and NaN-gradient divergence
// recovery in the trainer.

#include "common/fault_injection.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstring>
#include <fstream>
#include <memory>

#include <gtest/gtest.h>

#include "common/io/atomic_file.h"
#include "common/io/crc32.h"
#include "data/sliding_window.h"
#include "data/synthetic_traffic.h"
#include "nn/linear.h"
#include "optim/adam.h"
#include "train/checkpoint.h"
#include "train/trainer.h"

namespace d2stgnn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string MakeCleanDir(const std::string& name) {
  const std::string dir = TempPath(name);
  ::mkdir(dir.c_str(), 0755);
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* entry = ::readdir(d)) {
      if (entry->d_name[0] == '.') continue;
      ::unlink((dir + "/" + entry->d_name).c_str());
    }
    ::closedir(d);
  }
  return dir;
}

// Files in `dir` whose name contains `needle`; returns the first match's
// size via `size_out` (-1 when none).
int64_t CountFilesContaining(const std::string& dir, const std::string& needle,
                             int64_t* size_out = nullptr) {
  int64_t count = 0;
  if (size_out != nullptr) *size_out = -1;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* entry = ::readdir(d)) {
      if (std::strstr(entry->d_name, needle.c_str()) != nullptr) {
        if (count == 0 && size_out != nullptr) {
          struct stat st {};
          if (::stat((dir + "/" + entry->d_name).c_str(), &st) == 0) {
            *size_out = static_cast<int64_t>(st.st_size);
          }
        }
        ++count;
      }
    }
    ::closedir(d);
  }
  return count;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::DisarmAllFaultPoints();
    io::ClearIoHooks();
  }
};

TEST_F(FaultInjectionTest, Crc32MatchesKnownVector) {
  // The canonical IEEE 802.3 check value for "123456789".
  EXPECT_EQ(io::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(io::Crc32("", 0), 0x00000000u);
}

TEST_F(FaultInjectionTest, Crc32AccumulatorMatchesOneShot) {
  const char data[] = "decoupled spatial-temporal";
  io::Crc32Accumulator acc;
  acc.Update(data, 9);
  acc.Update(data + 9, sizeof(data) - 1 - 9);
  EXPECT_EQ(acc.value(), io::Crc32(data, sizeof(data) - 1));
}

TEST_F(FaultInjectionTest, AtomicWriterCommitsDurably) {
  const std::string dir = MakeCleanDir("atomic_commit");
  const std::string path = dir + "/file.bin";
  const std::string payload = "hello, durable world";
  {
    io::AtomicFileWriter writer(path, "test");
    ASSERT_TRUE(writer.Write(payload.data(),
                             static_cast<int64_t>(payload.size())));
    ASSERT_TRUE(writer.Commit());
  }
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(io::ReadFileBytes(path, &bytes));
  ASSERT_EQ(bytes.size(), payload.size());
  EXPECT_EQ(std::memcmp(bytes.data(), payload.data(), payload.size()), 0);
  EXPECT_EQ(CountFilesContaining(dir, ".tmp."), 0);  // no temp left behind
}

TEST_F(FaultInjectionTest, AbandonLeavesNoFile) {
  const std::string dir = MakeCleanDir("atomic_abandon");
  const std::string path = dir + "/file.bin";
  {
    io::AtomicFileWriter writer(path, "test");
    writer.Write("xxxx", 4);
    writer.Abandon();
  }
  struct stat st {};
  EXPECT_NE(::stat(path.c_str(), &st), 0);
  EXPECT_EQ(CountFilesContaining(dir, ".tmp."), 0);
}

TEST_F(FaultInjectionTest, IoHooksCanFailWrites) {
  const std::string dir = MakeCleanDir("hooks_fail");
  const std::string path = dir + "/file.bin";
  io::IoHooks hooks;
  hooks.on_write = [](const std::string&, int64_t offset,
                      int64_t size) -> io::WriteDecision {
    io::WriteDecision decision;
    if (offset >= 8) {
      decision.fail = true;
      decision.error_code = EIO;
    } else {
      decision.allowed = size;
    }
    return decision;
  };
  io::SetIoHooks(hooks);
  io::AtomicFileWriter writer(path, "test");
  ASSERT_TRUE(writer.Write("12345678", 8));
  EXPECT_FALSE(writer.Write("failing!", 8));
  EXPECT_FALSE(writer.ok());
  EXPECT_FALSE(writer.Commit());  // sticky error
  io::ClearIoHooks();
  struct stat st {};
  EXPECT_NE(::stat(path.c_str(), &st), 0);  // never committed
}

// A checkpoint save that can fail: the scenario fixture writes a good
// checkpoint first and asserts every injected failure leaves it loadable.
class CheckpointFaultTest : public FaultInjectionTest {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs these cases as concurrent processes.
    dir_ = MakeCleanDir(
        std::string("ckpt_faults_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    path_ = dir_ + "/model.d2ck";
    Rng rng(3);
    model_ = std::make_unique<nn::Linear>(4, 2, rng);
    std::vector<Tensor> params = model_->Parameters();
    for (Tensor& p : params) {
      for (float& x : p.Data()) x = 1.25f;
    }
    ASSERT_TRUE(train::SaveCheckpoint(*model_, path_));
    // The doomed second save would persist different values.
    for (Tensor& p : params) {
      for (float& x : p.Data()) x = 2.5f;
    }
  }

  // The previous (1.25-valued) checkpoint must still load after a failed
  // or crashed save.
  void ExpectPreviousCheckpointIntact() {
    Rng rng(9);
    nn::Linear loaded(4, 2, rng);
    ASSERT_TRUE(train::LoadCheckpoint(&loaded, path_));
    for (const Tensor& p : loaded.Parameters()) {
      for (float x : p.Data()) EXPECT_EQ(x, 1.25f);
    }
  }

  std::string dir_;
  std::string path_;
  std::unique_ptr<nn::Linear> model_;
};

TEST_F(CheckpointFaultTest, ShortWriteFailsSaveAndKeepsPrevious) {
  fault::FaultScript script;
  script.kind = fault::FaultKind::kShortWrite;
  script.trigger_offset = 16;
  fault::ArmFaultPoint("checkpoint.write", script);
  EXPECT_FALSE(train::SaveCheckpoint(*model_, path_));
  EXPECT_EQ(fault::FaultFireCount(), 1);
  ExpectPreviousCheckpointIntact();
  EXPECT_EQ(CountFilesContaining(dir_, ".tmp."), 0);
}

TEST_F(CheckpointFaultTest, EnospcFailsSaveAndKeepsPrevious) {
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;
  script.error_code = ENOSPC;
  fault::ArmFaultPoint("checkpoint.write", script);
  EXPECT_FALSE(train::SaveCheckpoint(*model_, path_));
  ExpectPreviousCheckpointIntact();
  EXPECT_EQ(CountFilesContaining(dir_, ".tmp."), 0);
}

TEST_F(CheckpointFaultTest, FsyncFailureFailsCommitAndKeepsPrevious) {
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;
  script.error_code = EIO;
  fault::ArmFaultPoint("checkpoint.fsync", script);
  EXPECT_FALSE(train::SaveCheckpoint(*model_, path_));
  ExpectPreviousCheckpointIntact();
  EXPECT_EQ(CountFilesContaining(dir_, ".tmp."), 0);
}

TEST_F(CheckpointFaultTest, RenameFailureFailsCommitAndKeepsPrevious) {
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;
  script.error_code = EIO;
  fault::ArmFaultPoint("checkpoint.rename", script);
  EXPECT_FALSE(train::SaveCheckpoint(*model_, path_));
  ExpectPreviousCheckpointIntact();
  EXPECT_EQ(CountFilesContaining(dir_, ".tmp."), 0);
}

TEST_F(CheckpointFaultTest, BitFlipsAreRejectedEverywhere) {
  // Re-save so the file holds the 2.5 values, then corrupt single bytes at
  // several structurally different offsets: header, mid-file, last byte.
  ASSERT_TRUE(train::SaveCheckpoint(*model_, path_));
  std::vector<uint8_t> good;
  ASSERT_TRUE(io::ReadFileBytes(path_, &good));
  for (const size_t offset :
       {size_t{3}, size_t{20}, good.size() / 2, good.size() - 1}) {
    std::vector<uint8_t> bad = good;
    bad[offset] ^= 0x10;
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(bad.data()),
                static_cast<std::streamsize>(bad.size()));
    }
    Rng rng(11);
    nn::Linear loaded(4, 2, rng);
    const std::vector<float> before = loaded.Parameters()[0].Data();
    EXPECT_FALSE(train::LoadCheckpoint(&loaded, path_))
        << "bit flip at offset " << offset << " was not detected";
    // Transactional: the rejected load never touched the model.
    EXPECT_EQ(loaded.Parameters()[0].Data(), before);
  }
}

using CheckpointFaultDeathTest = CheckpointFaultTest;

TEST_F(CheckpointFaultDeathTest, CrashAtOffsetLeavesExactPrefixAndOldFile) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(
      {
        fault::FaultScript script;
        script.kind = fault::FaultKind::kCrash;
        script.trigger_offset = 32;
        fault::ArmFaultPoint("checkpoint.write", script);
        train::SaveCheckpoint(*model_, path_);  // SIGKILLs itself
        ::_exit(0);                             // never reached
      },
      ::testing::KilledBySignal(SIGKILL), "");
  // The old checkpoint is untouched, and the torn temp file holds exactly
  // the 32 bytes written before the crash (byte-exact crash-at-offset).
  ExpectPreviousCheckpointIntact();
  int64_t temp_size = -1;
  ASSERT_EQ(CountFilesContaining(dir_, ".tmp.", &temp_size), 1);
  EXPECT_EQ(temp_size, 32);
  // A fresh save simply replaces the stale temp file path-space.
  fault::DisarmAllFaultPoints();
  EXPECT_TRUE(train::SaveCheckpoint(*model_, path_));
}

// NaN gradients injected into real training steps must trigger the
// trainer's rollback policy, not a crash or a poisoned parameter update.
class DivergenceRecoveryTest : public FaultInjectionTest {
 protected:
  class TinyModel : public train::ForecastingModel {
   public:
    TinyModel(int64_t num_nodes, int64_t horizon, Rng& rng)
        : ForecastingModel("tiny"),
          num_nodes_(num_nodes),
          horizon_(horizon),
          proj_(data::kInputFeatures, horizon, rng) {
      RegisterChild(&proj_);
    }
    Tensor Forward(const data::Batch& batch) override {
      const int64_t b = batch.batch_size;
      const Tensor last = Reshape(
          Slice(batch.x, 1, batch.input_len - 1, batch.input_len),
          {b, num_nodes_, data::kInputFeatures});
      Tensor out = proj_.Forward(last);
      out = Permute(out, {0, 2, 1});
      return Reshape(out, {b, horizon_, num_nodes_, 1});
    }
    int64_t horizon() const override { return horizon_; }

   private:
    int64_t num_nodes_;
    int64_t horizon_;
    nn::Linear proj_;
  };

  void SetUp() override {
    data::SyntheticTrafficOptions options;
    options.network.num_nodes = 6;
    options.num_steps = 600;
    options.seed = 31;
    traffic_ = data::GenerateSyntheticTraffic(options);
    scaler_.Fit(traffic_.dataset.values, 400, true);
    splits_ = data::MakeChronologicalSplits(600, 12, 12, 0.7f, 0.1f);
    train_loader_ = std::make_unique<data::WindowDataLoader>(
        &traffic_.dataset, &scaler_, splits_.train, 12, 12, 32);
    val_loader_ = std::make_unique<data::WindowDataLoader>(
        &traffic_.dataset, &scaler_, splits_.val, 12, 12, 32);
  }

  train::FitResult RunWithOptions(const train::TrainerOptions& options) {
    Rng rng(5);
    TinyModel model(6, 12, rng);
    train::Trainer trainer(&model, &scaler_, options);
    return trainer.Fit(train_loader_.get(), val_loader_.get());
  }

  data::SyntheticTraffic traffic_;
  data::StandardScaler scaler_;
  data::SplitWindows splits_;
  std::unique_ptr<data::WindowDataLoader> train_loader_;
  std::unique_ptr<data::WindowDataLoader> val_loader_;
};

TEST_F(DivergenceRecoveryTest, InjectedNanGradientRollsBackAndRecovers) {
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;  // event point: just fire once
  script.trigger_offset = 3;               // 4th batch of epoch 0
  fault::ArmFaultPoint("trainer.nan_grad", script);

  train::TrainerOptions options;
  options.epochs = 4;
  options.curriculum_step = 5;
  options.patience = 0;
  const train::FitResult result = RunWithOptions(options);
  EXPECT_EQ(result.stop_reason, train::StopReason::kCompleted);
  EXPECT_EQ(result.divergence_rollbacks, 1);
  ASSERT_EQ(result.history.size(), 4u);
  // The recovered run still produced finite losses throughout.
  for (const train::EpochStats& stats : result.history) {
    EXPECT_TRUE(std::isfinite(stats.train_loss));
  }
}

TEST_F(DivergenceRecoveryTest, PersistentNanGradientExhaustsRetries) {
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;
  script.repeat = true;  // every batch blows up
  fault::ArmFaultPoint("trainer.nan_grad", script);

  train::TrainerOptions options;
  options.epochs = 4;
  options.curriculum_step = 5;
  options.patience = 0;
  options.max_divergence_retries = 2;
  const train::FitResult result = RunWithOptions(options);
  EXPECT_EQ(result.stop_reason, train::StopReason::kDiverged);
  EXPECT_EQ(result.divergence_rollbacks, 2);
}

TEST_F(DivergenceRecoveryTest, NanGradientDetectedWithClippingDisabled) {
  // With clip_norm <= 0 the gradient-norm pass is skipped, so divergence
  // detection must come from the separate finiteness sweep.
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;
  script.trigger_offset = 2;
  fault::ArmFaultPoint("trainer.nan_grad", script);

  train::TrainerOptions options;
  options.epochs = 2;
  options.curriculum_step = 5;
  options.patience = 0;
  options.clip_norm = 0.0f;
  const train::FitResult result = RunWithOptions(options);
  EXPECT_EQ(result.stop_reason, train::StopReason::kCompleted);
  EXPECT_EQ(result.divergence_rollbacks, 1);
}

}  // namespace
}  // namespace d2stgnn
