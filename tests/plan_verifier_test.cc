// Tests of the static plan-IR verifier (DESIGN.md §12): a race-free
// captured plan passes with zero errors, each plan_mutator.h corruption
// class is detected with the matching diagnostic code and step/op/level
// provenance, the per-op traits table agrees with the capture surface, and
// reports render with stable code names.

#include "exec/plan_verifier.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/graph_capture.h"
#include "exec/plan_mutator.h"
#include "tensor/op_registry.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace d2stgnn {
namespace {

// A small forward with every structural feature the verifier reasons about:
// parallel same-level branches (the two MatMul arms), an accumulating op
// (MatMul), an indexed op (EmbeddingLookup, bound), a pure copy (Reshape),
// captured constants, and a multi-level reduction chain.
class PlanVerifierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(17);
    w1_ = Tensor::Randn({4, 5}, rng);
    w2_ = Tensor::Randn({4, 5}, rng);
    table_ = Tensor::Randn({7, 5}, rng);
    x_ = Tensor::Randn({2, 3, 4}, rng);
    idx_ = {0, 3, 6, 2, 5, 1};
  }

  std::shared_ptr<const exec::ExecutionPlan> Capture() {
    NoGradGuard no_grad;
    exec::GraphCapture capture;
    capture.BindInput("x", x_);
    capture.BindIndexInput("idx", idx_);
    Tensor a = MatMul(x_, w1_);                      // [2,3,5]
    Tensor b = MatMul(x_, w2_);                      // same level as `a`
    Tensor e = EmbeddingLookup(table_, idx_, {2, 3});
    Tensor h = Relu(Add(a, Mul(b, e)));
    Tensor flat = Reshape(h, {2, 15});               // pure copy
    Tensor out = Sum(Softmax(flat, -1), 1, /*keepdim=*/true);
    auto plan = capture.Finish(out);
    EXPECT_NE(plan, nullptr) << capture.error();
    return plan;
  }

  /// First diagnostic carrying `code`, which must exist.
  static exec::Diagnostic FindDiag(const exec::VerifierReport& report,
                                   exec::DiagCode code) {
    for (const exec::Diagnostic& d : report.diagnostics) {
      if (d.code == code) return d;
    }
    ADD_FAILURE() << "no diagnostic with code " << exec::DiagCodeName(code)
                  << " in:\n"
                  << report.ToString();
    return exec::Diagnostic{};
  }

  Tensor w1_, w2_, table_, x_;
  std::vector<int64_t> idx_;
};

// The negative test: a real race-free captured plan verifies clean.
TEST_F(PlanVerifierTest, CleanCapturedPlanPassesWithZeroErrors) {
  auto plan = Capture();
  ASSERT_NE(plan, nullptr);
  const exec::VerifierReport report = exec::VerifyPlan(*plan);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.errors, 0);
  // The Reshape shows up as the fusion-worklist advisory, not an error.
  EXPECT_TRUE(report.HasCode(exec::DiagCode::kCopyStep)) << report.ToString();
  EXPECT_GE(report.advisories, 1);
}

TEST_F(PlanVerifierTest, OverlappingSameLevelWritesAreDetected) {
  auto plan = Capture();
  ASSERT_NE(plan, nullptr);
  auto mutant =
      exec::MutatePlan(*plan, exec::PlanMutation::kOverlapSameLevelWrites);
  ASSERT_NE(mutant, nullptr) << "plan has no level with two steps";

  const exec::VerifierReport report = exec::VerifyPlan(*mutant);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.HasCode(exec::DiagCode::kSameLevelWriteOverlap))
      << report.ToString();
  const exec::Diagnostic d =
      FindDiag(report, exec::DiagCode::kSameLevelWriteOverlap);
  // Pairwise provenance: two distinct steps, same level, named op.
  EXPECT_GE(d.step, 0);
  EXPECT_GE(d.other_step, 0);
  EXPECT_NE(d.step, d.other_step);
  EXPECT_FALSE(d.op.empty());
  EXPECT_GE(d.level, 1);
  EXPECT_NE(d.message.find("write/write race"), std::string::npos)
      << d.message;
  // The aliased bytes also violate the planner's interference claim.
  EXPECT_TRUE(report.HasCode(exec::DiagCode::kSlabInterference));
}

TEST_F(PlanVerifierTest, ReadOfReusedSlabRegionIsDetected) {
  auto plan = Capture();
  ASSERT_NE(plan, nullptr);
  auto mutant =
      exec::MutatePlan(*plan, exec::PlanMutation::kReadReusedSlabRegion);
  ASSERT_NE(mutant, nullptr);

  const exec::VerifierReport report = exec::VerifyPlan(*mutant);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.HasCode(exec::DiagCode::kLifetimeTooShort))
      << report.ToString();
  const exec::Diagnostic d =
      FindDiag(report, exec::DiagCode::kLifetimeTooShort);
  EXPECT_GE(d.step, 0);
  EXPECT_GE(d.other_step, 0) << "must name the producing step";
  EXPECT_FALSE(d.op.empty());
  EXPECT_NE(d.message.find("lifetime"), std::string::npos) << d.message;
}

TEST_F(PlanVerifierTest, DanglingValueRefIsDetected) {
  auto plan = Capture();
  ASSERT_NE(plan, nullptr);
  auto mutant = exec::MutatePlan(*plan, exec::PlanMutation::kDanglingValueRef);
  ASSERT_NE(mutant, nullptr);

  const exec::VerifierReport report = exec::VerifyPlan(*mutant);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.HasCode(exec::DiagCode::kValueRefOutOfRange))
      << report.ToString();
  const exec::Diagnostic d =
      FindDiag(report, exec::DiagCode::kValueRefOutOfRange);
  EXPECT_GE(d.step, 0);
  EXPECT_FALSE(d.op.empty());
  EXPECT_GE(d.level, 1);
  EXPECT_NE(d.message.find("dangles"), std::string::npos) << d.message;
}

TEST_F(PlanVerifierTest, WrongZeroOutputIsDetected) {
  auto plan = Capture();
  ASSERT_NE(plan, nullptr);
  auto mutant = exec::MutatePlan(*plan, exec::PlanMutation::kWrongZeroOutput);
  ASSERT_NE(mutant, nullptr);

  const exec::VerifierReport report = exec::VerifyPlan(*mutant);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.HasCode(exec::DiagCode::kWrongZeroOutput))
      << report.ToString();
  const exec::Diagnostic d = FindDiag(report, exec::DiagCode::kWrongZeroOutput);
  EXPECT_GE(d.step, 0);
  EXPECT_FALSE(d.op.empty());
  EXPECT_NE(d.message.find(d.op), std::string::npos)
      << "message must name the op: " << d.message;
}

TEST_F(PlanVerifierTest, StaleConstantPointerIsDetected) {
  auto plan = Capture();
  ASSERT_NE(plan, nullptr);
  auto mutant =
      exec::MutatePlan(*plan, exec::PlanMutation::kStaleConstantPointer);
  ASSERT_NE(mutant, nullptr);

  const exec::VerifierReport report = exec::VerifyPlan(*mutant);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.HasCode(exec::DiagCode::kConstantMismatch))
      << report.ToString();
  const exec::Diagnostic d =
      FindDiag(report, exec::DiagCode::kConstantMismatch);
  EXPECT_NE(d.message.find("constant"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("stale"), std::string::npos) << d.message;
}

// MutatePlan corrupts a clone: after every mutation the original plan must
// still verify clean (mutation tests cannot poison each other).
TEST_F(PlanVerifierTest, MutationNeverTouchesTheOriginalPlan) {
  auto plan = Capture();
  ASSERT_NE(plan, nullptr);
  for (const exec::PlanMutation mutation :
       {exec::PlanMutation::kOverlapSameLevelWrites,
        exec::PlanMutation::kReadReusedSlabRegion,
        exec::PlanMutation::kDanglingValueRef,
        exec::PlanMutation::kWrongZeroOutput,
        exec::PlanMutation::kStaleConstantPointer}) {
    ASSERT_NE(exec::MutatePlan(*plan, mutation), nullptr);
    const exec::VerifierReport report = exec::VerifyPlan(*plan);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
}

TEST_F(PlanVerifierTest, ToStringCarriesCodeNamesAndSeverities) {
  auto plan = Capture();
  ASSERT_NE(plan, nullptr);
  auto mutant = exec::MutatePlan(*plan, exec::PlanMutation::kDanglingValueRef);
  ASSERT_NE(mutant, nullptr);
  const std::string text = exec::VerifyPlan(*mutant).ToString();
  EXPECT_NE(text.find("error[ValueRefOutOfRange]"), std::string::npos) << text;
  EXPECT_NE(text.find("plan verification:"), std::string::npos) << text;

  const std::string clean = exec::VerifyPlan(*plan).ToString();
  EXPECT_NE(clean.find("0 error(s)"), std::string::npos) << clean;
  EXPECT_NE(clean.find("advisory[CopyStep]"), std::string::npos) << clean;
}

// ---------------------------------------------------------------------------
// Per-op replay traits (the read/write contract the verifier checks).

TEST(PlanOpTraitsTest, TraitsMatchTheCaptureSurface) {
  const PlanOpTraits* matmul = FindPlanOpTraits("MatMul");
  ASSERT_NE(matmul, nullptr);
  EXPECT_TRUE(matmul->accumulates);
  EXPECT_FALSE(matmul->indexed);

  const PlanOpTraits* lookup = FindPlanOpTraits("EmbeddingLookup");
  ASSERT_NE(lookup, nullptr);
  EXPECT_TRUE(lookup->indexed);
  EXPECT_FALSE(lookup->accumulates);

  const PlanOpTraits* reshape = FindPlanOpTraits("Reshape");
  ASSERT_NE(reshape, nullptr);
  EXPECT_TRUE(reshape->pure_copy);

  const PlanOpTraits* add = FindPlanOpTraits("Add");
  ASSERT_NE(add, nullptr);
  EXPECT_FALSE(add->accumulates);
  EXPECT_FALSE(add->indexed);
  EXPECT_FALSE(add->pure_copy);

  // Composed ops never appear in plans and must not be in the table.
  EXPECT_EQ(FindPlanOpTraits("Mean"), nullptr);
  EXPECT_EQ(FindPlanOpTraits("Transpose"), nullptr);
  EXPECT_EQ(FindPlanOpTraits("NotAnOp"), nullptr);
}

TEST(PlanOpTraitsTest, PlanOpNamesIsSortedAndCoversTheVocabulary) {
  const std::vector<std::string> names = PlanOpNames();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(names.size(), 29u);
  for (const std::string& name : names) {
    EXPECT_NE(FindPlanOpTraits(name), nullptr) << name;
  }
  // "SumDim" (the dim overload of Sum) is a recorded name of its own.
  EXPECT_TRUE(std::binary_search(names.begin(), names.end(), "SumDim"));
}

}  // namespace
}  // namespace d2stgnn
