#include "nn/linear.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/gru_cell.h"
#include "nn/init.h"
#include "nn/lstm_cell.h"
#include "nn/mlp.h"
#include "nn/positional_encoding.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace d2stgnn::nn {
namespace {

TEST(LinearLayer, ShapeAndBias) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  Tensor x = Tensor::Ones({2, 4});
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  EXPECT_EQ(layer.Parameters().size(), 2u);  // weight + bias
  Linear no_bias(4, 3, rng, /*bias=*/false);
  EXPECT_EQ(no_bias.Parameters().size(), 1u);
}

TEST(LinearLayer, AppliesToLastDimOfAnyRank) {
  Rng rng(1);
  Linear layer(5, 2, rng);
  Tensor x = Tensor::Randn({3, 4, 6, 5}, rng);
  EXPECT_EQ(layer.Forward(x).shape(), (Shape{3, 4, 6, 2}));
}

TEST(LinearLayer, GradCheck) {
  Rng rng(2);
  Linear layer(3, 2, rng);
  Tensor x = Tensor::Randn({4, 3}, rng).SetRequiresGrad(true);
  std::vector<Tensor> params = layer.Parameters();
  params.push_back(x);
  auto loss = [&] { return Sum(Mul(layer.Forward(x), layer.Forward(x))); };
  auto result = CheckGradients(loss, params, rng);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

TEST(MlpStack, BuildsRequestedDepth) {
  Rng rng(3);
  Mlp mlp({6, 4, 4, 1}, rng);
  Tensor y = mlp.Forward(Tensor::Ones({2, 6}));
  EXPECT_EQ(y.shape(), (Shape{2, 1}));
  EXPECT_EQ(mlp.Parameters().size(), 6u);  // 3 layers x (W, b)
}

TEST(GruCellTest, StateShapePreserved) {
  Rng rng(4);
  GruCell cell(5, 7, rng);
  Tensor x = Tensor::Randn({3, 5}, rng);
  Tensor h = Tensor::Zeros({3, 7});
  Tensor h2 = cell.Forward(x, h);
  EXPECT_EQ(h2.shape(), (Shape{3, 7}));
}

TEST(GruCellTest, ZeroUpdateGateKeepsState) {
  // With all weights zero, z = sigmoid(0) = 0.5 and candidate = tanh(0) = 0,
  // so the new state is 0.5 * h.
  Rng rng(4);
  GruCell cell(2, 2, rng);
  for (Tensor& p : cell.Parameters()) {
    std::fill(p.Data().begin(), p.Data().end(), 0.0f);
  }
  Tensor x = Tensor::Ones({1, 2});
  Tensor h = Tensor::Full({1, 2}, 0.8f);
  Tensor h2 = cell.Forward(x, h);
  EXPECT_NEAR(h2.At(0), 0.4f, 1e-5f);
}

TEST(GruCellTest, GradFlowsThroughTime) {
  Rng rng(5);
  GruCell cell(3, 3, rng);
  Tensor x = Tensor::Randn({2, 3}, rng).SetRequiresGrad(true);
  auto loss = [&] {
    Tensor h = Tensor::Zeros({2, 3});
    for (int t = 0; t < 4; ++t) h = cell.Forward(x, h);
    return Sum(Mul(h, h));
  };
  std::vector<Tensor> params = {x, cell.Parameters()[0]};
  auto result = CheckGradients(loss, params, rng, 1e-2f, 3e-2f);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

TEST(LstmCellTest, StateShapesAndForgetBias) {
  Rng rng(6);
  LstmCell cell(4, 6, rng);
  LstmCell::State s{Tensor::Zeros({2, 6}), Tensor::Zeros({2, 6})};
  auto s2 = cell.Forward(Tensor::Randn({2, 4}, rng), s);
  EXPECT_EQ(s2.h.shape(), (Shape{2, 6}));
  EXPECT_EQ(s2.c.shape(), (Shape{2, 6}));
  // Forget bias initialized to 1.
  bool found = false;
  for (auto& [name, p] : cell.NamedParameters()) {
    if (name == "b_f") {
      found = true;
      for (float v : p.Data()) EXPECT_FLOAT_EQ(v, 1.0f);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AttentionLayer, OutputShapeMatchesInput) {
  Rng rng(7);
  MultiHeadSelfAttention attention(8, 2, rng);
  Tensor x = Tensor::Randn({3, 5, 8}, rng);
  EXPECT_EQ(attention.Forward(x).shape(), (Shape{3, 5, 8}));
}

TEST(AttentionLayer, PermutationEquivariantOverTime) {
  // Without positional encoding, self-attention commutes with permutations
  // of the time axis — exactly why the paper adds Eq. 12.
  Rng rng(8);
  MultiHeadSelfAttention attention(4, 2, rng);
  Tensor x = Tensor::Randn({1, 3, 4}, rng);
  NoGradGuard no_grad;
  Tensor y = attention.Forward(x);
  // Reverse time: steps {2, 1, 0}.
  Tensor x_rev = Concat({Slice(x, 1, 2, 3), Slice(x, 1, 1, 2),
                         Slice(x, 1, 0, 1)}, 1);
  Tensor y_rev = attention.Forward(x_rev);
  for (int64_t d = 0; d < 4; ++d) {
    EXPECT_NEAR(y.At({0, 0, d}), y_rev.At({0, 2, d}), 1e-4f);
  }
}

TEST(AttentionLayer, GradCheck) {
  Rng rng(9);
  MultiHeadSelfAttention attention(4, 2, rng);
  Tensor x = Tensor::Randn({2, 3, 4}, rng).SetRequiresGrad(true);
  std::vector<Tensor> params = attention.Parameters();
  params.push_back(x);
  auto loss = [&] { return Sum(Abs(attention.Forward(x))); };
  auto result = CheckGradients(loss, params, rng, 1e-2f, 3e-2f, 8);
  EXPECT_TRUE(result.ok) << result.max_relative_error;
}

TEST(EmbeddingLayer, LookupAndGrad) {
  Rng rng(10);
  Embedding embedding(6, 3, rng);
  Tensor rows = embedding.Forward({1, 4, 1}, {3});
  EXPECT_EQ(rows.shape(), (Shape{3, 3}));
  for (int64_t d = 0; d < 3; ++d) {
    EXPECT_FLOAT_EQ(rows.At({0, d}), rows.At({2, d}));
  }
  Sum(rows).Backward();
  // Row 1 used twice -> grad 2; row 0 unused -> grad 0.
  EXPECT_FLOAT_EQ(embedding.table().Grad().At({1, 0}), 2.0f);
  EXPECT_FLOAT_EQ(embedding.table().Grad().At({0, 0}), 0.0f);
}

TEST(PositionalEncodingTest, MatchesEq12) {
  PositionalEncoding pe(10, 4);
  const Tensor& table = pe.table();
  // e_{t,0} = sin(t), e_{t,1} = cos(t), e_{t,2} = sin(t/10000^{2/4}).
  EXPECT_NEAR(table.At({3, 0}), std::sin(3.0), 1e-5);
  EXPECT_NEAR(table.At({3, 1}), std::cos(3.0), 1e-5);
  EXPECT_NEAR(table.At({3, 2}), std::sin(3.0 / std::pow(10000.0, 0.5)), 1e-5);
}

TEST(PositionalEncodingTest, AddsToSequence) {
  PositionalEncoding pe(10, 4);
  Tensor x = Tensor::Zeros({2, 5, 4});
  Tensor y = pe.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 4}));
  EXPECT_NEAR(y.At({1, 2, 0}), std::sin(2.0), 1e-5);
}

TEST(ModuleTree, ParameterAggregationAndZeroGrad) {
  Rng rng(11);
  Mlp mlp({3, 3, 3}, rng);
  Tensor x = Tensor::Ones({1, 3});
  Sum(mlp.Forward(x)).Backward();
  bool any_grad = false;
  for (const Tensor& p : mlp.Parameters()) {
    if (!p.GradData().empty()) any_grad = true;
  }
  EXPECT_TRUE(any_grad);
  mlp.ZeroGrad();
  for (const Tensor& p : mlp.Parameters()) {
    EXPECT_TRUE(p.GradData().empty());
  }
}

TEST(InitTest, XavierBoundsRespected) {
  Rng rng(12);
  Tensor w = XavierUniform({100, 100}, rng);
  const float bound = std::sqrt(6.0f / 200.0f);
  for (float v : w.Data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(InitTest, XavierNormalVarianceApproximatelyCorrect) {
  Rng rng(13);
  Tensor w = XavierNormal({200, 200}, rng);
  double sum_sq = 0.0;
  for (float v : w.Data()) sum_sq += static_cast<double>(v) * v;
  const double variance = sum_sq / static_cast<double>(w.numel());
  EXPECT_NEAR(variance, 2.0 / 400.0, 1e-3);
}

}  // namespace
}  // namespace d2stgnn::nn
