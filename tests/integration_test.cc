// End-to-end integration tests of the paper's headline claims at miniature
// scale: data generation -> training -> evaluation across the full stack.

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/historical_average.h"
#include "baselines/registry.h"
#include "core/d2stgnn.h"
#include "data/synthetic_traffic.h"
#include "train/evaluator.h"
#include "train/trainer.h"

namespace d2stgnn {
namespace {

struct Pipeline {
  data::SyntheticTraffic traffic;
  data::StandardScaler scaler;
  data::SplitWindows splits;
  std::unique_ptr<data::WindowDataLoader> train_loader;
  std::unique_ptr<data::WindowDataLoader> val_loader;
  std::unique_ptr<data::WindowDataLoader> test_loader;

  explicit Pipeline(uint64_t seed) {
    data::SyntheticTrafficOptions options;
    options.network.num_nodes = 8;
    options.network.neighbors = 3;
    options.num_steps = 1800;
    options.seed = seed;
    options.diffusion_strength = 0.45f;
    traffic = data::GenerateSyntheticTraffic(options);
    scaler.Fit(traffic.dataset.values, 1260, true);
    splits = data::MakeChronologicalSplits(1800, 12, 12, 0.7f, 0.1f);
    // Subsample for speed.
    auto thin = [](std::vector<int64_t> v, size_t stride) {
      std::vector<int64_t> out;
      for (size_t i = 0; i < v.size(); i += stride) out.push_back(v[i]);
      return out;
    };
    train_loader = std::make_unique<data::WindowDataLoader>(
        &traffic.dataset, &scaler, thin(splits.train, 6), 12, 12, 16);
    val_loader = std::make_unique<data::WindowDataLoader>(
        &traffic.dataset, &scaler, thin(splits.val, 2), 12, 12, 16);
    test_loader = std::make_unique<data::WindowDataLoader>(
        &traffic.dataset, &scaler, thin(splits.test, 2), 12, 12, 16);
  }

  double TrainAndTestMae(train::ForecastingModel* model, int64_t epochs) {
    train::TrainerOptions options;
    options.epochs = epochs;
    options.seed = 3;
    train::Trainer trainer(model, &scaler, options);
    trainer.Fit(train_loader.get(), val_loader.get());
    return trainer.Evaluate(test_loader.get()).mae;
  }
};

TEST(Integration, DecoupledBeatsCoupledOnDecomposableTraffic) {
  // The paper's Table 4 claim: on traffic that truly is diffusion +
  // inherent, the decoupled framework (D2STGNN+) beats the coupled variant
  // (D2STGNN#) with the same blocks.
  Pipeline pipeline(51);
  baselines::ModelConfig config;
  config.num_nodes = 8;
  config.hidden_dim = 12;
  config.embed_dim = 6;

  Rng rng_a(5);
  auto decoupled = baselines::MakeModel(
      "D2STGNN-static", config, pipeline.traffic.dataset.network.adjacency,
      rng_a);
  Rng rng_b(5);
  auto coupled = baselines::MakeModel(
      "D2STGNN-coupled", config, pipeline.traffic.dataset.network.adjacency,
      rng_b);

  const double mae_decoupled =
      pipeline.TrainAndTestMae(decoupled.get(), 6);
  const double mae_coupled = pipeline.TrainAndTestMae(coupled.get(), 6);
  EXPECT_LT(mae_decoupled, mae_coupled * 1.02)
      << "decoupled " << mae_decoupled << " vs coupled " << mae_coupled;
}

TEST(Integration, D2StgnnBeatsHistoricalAverage) {
  // Table 3's most basic ordering at miniature scale.
  Pipeline pipeline(52);
  baselines::ModelConfig config;
  config.num_nodes = 8;
  config.hidden_dim = 12;
  config.embed_dim = 6;
  Rng rng(6);
  auto model = baselines::MakeModel(
      "D2STGNN", config, pipeline.traffic.dataset.network.adjacency, rng);
  const double mae_model = pipeline.TrainAndTestMae(model.get(), 6);

  baselines::HistoricalAverage ha;
  ha.Fit(pipeline.traffic.dataset, 1260);
  // Evaluate HA on the same thinned test windows (rebuild the list the
  // pipeline used).
  auto thin = [](std::vector<int64_t> v, size_t stride) {
    std::vector<int64_t> out;
    for (size_t i = 0; i < v.size(); i += stride) out.push_back(v[i]);
    return out;
  };
  const std::vector<int64_t> starts = thin(pipeline.splits.test, 2);
  const Tensor pred =
      ha.Predict(pipeline.traffic.dataset, starts, 12, 12);
  std::vector<float> truth(pred.Data().size());
  const int64_t n = 8;
  for (size_t w = 0; w < starts.size(); ++w) {
    for (int64_t h = 0; h < 12; ++h) {
      const float* src = pipeline.traffic.dataset.values.Data().data() +
                         (starts[w] + 12 + h) * n;
      std::copy(src, src + n,
                truth.data() + (w * 12 + static_cast<size_t>(h)) * n);
    }
  }
  const auto mae_ha =
      metrics::ComputeMetrics(pred, Tensor(pred.shape(), std::move(truth)))
          .mae;
  EXPECT_LT(mae_model, mae_ha)
      << "model " << mae_model << " vs HA " << mae_ha;
}

TEST(Integration, DeterministicTrainingRuns) {
  // Same seeds end to end -> bit-identical metrics (reproducibility).
  auto run = [] {
    Pipeline pipeline(53);
    baselines::ModelConfig config;
    config.num_nodes = 8;
    config.hidden_dim = 8;
    config.embed_dim = 4;
    Rng rng(9);
    auto model = baselines::MakeModel(
        "D2STGNN", config, pipeline.traffic.dataset.network.adjacency, rng);
    return pipeline.TrainAndTestMae(model.get(), 2);
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Integration, FailureZerosDoNotPoisonTraining) {
  // Heavy sensor failures: the masked loss must keep training stable and
  // the model must keep predicting plausible (non-zero) speeds.
  data::SyntheticTrafficOptions options;
  options.network.num_nodes = 6;
  options.num_steps = 900;
  options.seed = 54;
  options.failure_prob = 5e-3f;  // lots of failures
  auto traffic = data::GenerateSyntheticTraffic(options);
  data::StandardScaler scaler;
  scaler.Fit(traffic.dataset.values, 630, true);
  auto splits = data::MakeChronologicalSplits(900, 12, 12, 0.7f, 0.1f);
  data::WindowDataLoader train_loader(&traffic.dataset, &scaler,
                                      splits.train, 12, 12, 32);

  core::D2StgnnConfig config;
  config.num_nodes = 6;
  config.hidden_dim = 8;
  config.embed_dim = 4;
  config.num_layers = 1;
  config.num_heads = 2;
  Rng rng(10);
  core::D2Stgnn model(config, traffic.dataset.network.adjacency, rng);
  train::TrainerOptions trainer_options;
  trainer_options.epochs = 2;
  train::Trainer trainer(&model, &scaler, trainer_options);
  const auto result = trainer.Fit(&train_loader, nullptr);
  for (const auto& epoch : result.history) {
    EXPECT_TRUE(std::isfinite(epoch.train_loss));
  }
  // Mean prediction magnitude stays in a sane speed range.
  NoGradGuard no_grad;
  model.SetTraining(false);
  const data::Batch batch = train_loader.GetBatch(0);
  const Tensor pred = scaler.InverseTransform(model.Forward(batch));
  double mean = 0.0;
  for (float v : pred.Data()) mean += v;
  mean /= static_cast<double>(pred.numel());
  EXPECT_GT(mean, 10.0);
  EXPECT_LT(mean, 90.0);
}

}  // namespace
}  // namespace d2stgnn
