#include "graph/sensor_graph.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/localized_transition.h"
#include "graph/transition.h"
#include "tensor/ops.h"

namespace d2stgnn {
namespace {

graph::SensorNetwork MakeNetwork(int64_t n = 16, bool directed = true) {
  graph::SensorNetworkOptions options;
  options.num_nodes = n;
  options.neighbors = 3;
  options.directed = directed;
  Rng rng(77);
  return graph::BuildRandomSensorNetwork(options, rng);
}

TEST(SensorGraph, BuildsRequestedSize) {
  const auto net = MakeNetwork(16);
  EXPECT_EQ(net.num_nodes, 16);
  EXPECT_EQ(net.adjacency.shape(), (Shape{16, 16}));
  EXPECT_EQ(net.road_distance.shape(), (Shape{16, 16}));
}

TEST(SensorGraph, SelfDistanceZeroAndSelfWeightOne) {
  const auto net = MakeNetwork(12);
  for (int64_t i = 0; i < 12; ++i) {
    EXPECT_FLOAT_EQ(net.road_distance.At({i, i}), 0.0f);
    EXPECT_FLOAT_EQ(net.adjacency.At({i, i}), 1.0f);
  }
}

TEST(SensorGraph, EveryNodeHasNeighbors) {
  const auto net = MakeNetwork(20);
  for (int64_t i = 0; i < 20; ++i) {
    int64_t out_degree = 0;
    for (int64_t j = 0; j < 20; ++j) {
      if (i != j && net.adjacency.At({i, j}) > 0.0f) ++out_degree;
    }
    EXPECT_GT(out_degree, 0) << "node " << i << " is isolated";
  }
}

TEST(SensorGraph, DirectedGraphIsAsymmetric) {
  const auto net = MakeNetwork(24, /*directed=*/true);
  bool asymmetric = false;
  for (int64_t i = 0; i < 24 && !asymmetric; ++i) {
    for (int64_t j = 0; j < 24; ++j) {
      if (std::fabs(net.adjacency.At({i, j}) - net.adjacency.At({j, i})) >
          1e-6f) {
        asymmetric = true;
        break;
      }
    }
  }
  EXPECT_TRUE(asymmetric);
}

TEST(SensorGraph, UndirectedGraphIsSymmetric) {
  const auto net = MakeNetwork(24, /*directed=*/false);
  for (int64_t i = 0; i < 24; ++i) {
    for (int64_t j = 0; j < 24; ++j) {
      EXPECT_NEAR(net.adjacency.At({i, j}), net.adjacency.At({j, i}), 1e-6f);
    }
  }
}

TEST(SensorGraph, GaussianKernelThresholdDropsWeakEdges) {
  // Two clusters far apart: cross-cluster weights must be zero.
  std::vector<float> dist = {0.0f, 0.1f, 100.0f, 0.1f,  0.0f, 100.0f,
                             100.0f, 100.0f, 0.0f};
  Tensor d({3, 3}, dist);
  Tensor adj = graph::ThresholdedGaussianAdjacency(d, 0.1f);
  EXPECT_GT(adj.At({0, 1}), 0.0f);
  EXPECT_FLOAT_EQ(adj.At({0, 2}), 0.0f);
}

TEST(SensorGraph, CountEdgesIgnoresDiagonal) {
  Tensor adj = Tensor::Eye(4);
  EXPECT_EQ(graph::CountEdges(adj), 0);
  adj.Data()[1] = 0.5f;  // (0, 1)
  EXPECT_EQ(graph::CountEdges(adj), 1);
}

TEST(Transition, ForwardRowsSumToOne) {
  const auto net = MakeNetwork(10);
  const Tensor p = graph::ForwardTransition(net.adjacency);
  for (int64_t i = 0; i < 10; ++i) {
    float row = 0.0f;
    for (int64_t j = 0; j < 10; ++j) row += p.At({i, j});
    EXPECT_NEAR(row, 1.0f, 1e-5f);
  }
}

TEST(Transition, BackwardIsTransposedNormalization) {
  const auto net = MakeNetwork(10);
  const Tensor pb = graph::BackwardTransition(net.adjacency);
  for (int64_t i = 0; i < 10; ++i) {
    float row = 0.0f;
    for (int64_t j = 0; j < 10; ++j) row += pb.At({i, j});
    EXPECT_NEAR(row, 1.0f, 1e-5f);
  }
}

TEST(Transition, ZeroRowStaysZero) {
  Tensor adj({2, 2}, {0.0f, 0.0f, 1.0f, 1.0f});
  const Tensor p = graph::ForwardTransition(adj);
  EXPECT_FLOAT_EQ(p.At({0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(p.At({0, 1}), 0.0f);
  EXPECT_FLOAT_EQ(p.At({1, 0}), 0.5f);
}

TEST(Transition, PowersMatchRepeatedMultiplication) {
  const auto net = MakeNetwork(8);
  const Tensor p = graph::ForwardTransition(net.adjacency);
  const auto powers = graph::TransitionPowers(p, 3);
  ASSERT_EQ(powers.size(), 3u);
  const Tensor p3 = MatMul(MatMul(p, p), p);
  for (int64_t i = 0; i < p3.numel(); ++i) {
    EXPECT_NEAR(powers[2].At(i), p3.At(i), 1e-5f);
  }
}

TEST(Transition, PowersKeepRowStochasticity) {
  const auto net = MakeNetwork(8, /*directed=*/false);
  const Tensor p = graph::ForwardTransition(net.adjacency);
  for (const Tensor& power : graph::TransitionPowers(p, 3)) {
    for (int64_t i = 0; i < 8; ++i) {
      float row = 0.0f;
      for (int64_t j = 0; j < 8; ++j) row += power.At({i, j});
      EXPECT_NEAR(row, 1.0f, 1e-4f);
    }
  }
}

TEST(LocalizedTransition, MasksDiagonalOfEveryBlock) {
  // Eq. 4: P^local[i, i + k'N] must be zero — a node's own history belongs
  // to the inherent model.
  const auto net = MakeNetwork(6);
  const Tensor p = graph::ForwardTransition(net.adjacency);
  const Tensor local = graph::LocalizedTransition(p, 3);
  ASSERT_EQ(local.shape(), (Shape{6, 18}));
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t block = 0; block < 3; ++block) {
      EXPECT_FLOAT_EQ(local.At({i, block * 6 + i}), 0.0f)
          << "self-loop not masked at block " << block;
    }
  }
}

TEST(LocalizedTransition, BlocksAreIdenticalCopies) {
  const auto net = MakeNetwork(6);
  const Tensor p = graph::ForwardTransition(net.adjacency);
  const Tensor local = graph::LocalizedTransition(p, 2);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_FLOAT_EQ(local.At({i, j}), local.At({i, 6 + j}));
    }
  }
}

TEST(LocalizedTransition, SupportsBatchedDynamicGraphs) {
  Rng rng(5);
  const Tensor p = Softmax(Tensor::Randn({4, 5, 5}, rng), -1);
  const Tensor local = graph::LocalizedTransition(p, 3);
  EXPECT_EQ(local.shape(), (Shape{4, 5, 15}));
}

TEST(LocalizedTransition, GradientFlowsThroughMask) {
  Rng rng(5);
  Tensor p = Tensor::Rand({4, 4}, rng, 0.1f, 1.0f).SetRequiresGrad(true);
  Tensor local = graph::LocalizedTransition(p, 2);
  Sum(local).Backward();
  // Off-diagonal entries appear in k_t = 2 blocks -> gradient 2; diagonal
  // entries are masked -> gradient 0.
  EXPECT_FLOAT_EQ(p.Grad().At({0, 1}), 2.0f);
  EXPECT_FLOAT_EQ(p.Grad().At({0, 0}), 0.0f);
}

}  // namespace
}  // namespace d2stgnn
