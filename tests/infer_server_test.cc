// Tests of the micro-batching request server: concurrent submitters (the
// TSan target), coalescing policy (full flush vs max-wait flush), slow
// consumers, bounded-queue backpressure, and graceful shutdown semantics
// (drain resolves everything, cancel resolves everything as cancelled).

#include "infer/batching_server.h"

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "data/sliding_window.h"
#include "infer/retry.h"
#include "data/synthetic_traffic.h"
#include "nn/linear.h"
#include "train/forecasting_model.h"

namespace d2stgnn {
namespace {

// Linear readout of the last frame (same as train_test.cc). Its forward is
// elementwise per sample, so a request's forecast is bitwise independent of
// which batch the dispatcher put it in — the property the equality
// assertions below lean on.
class TinyModel : public train::ForecastingModel {
 public:
  TinyModel(int64_t num_nodes, int64_t horizon, Rng& rng)
      : ForecastingModel("tiny"),
        num_nodes_(num_nodes),
        horizon_(horizon),
        proj_(data::kInputFeatures, horizon, rng) {
    RegisterChild(&proj_);
  }

  Tensor Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size;
    const Tensor last = Reshape(
        Slice(batch.x, 1, batch.input_len - 1, batch.input_len),
        {b, num_nodes_, data::kInputFeatures});
    Tensor out = proj_.Forward(last);
    out = Permute(out, {0, 2, 1});
    return Reshape(out, {b, horizon_, num_nodes_, 1});
  }

  int64_t horizon() const override { return horizon_; }

 private:
  int64_t num_nodes_;
  int64_t horizon_;
  nn::Linear proj_;
};

constexpr int64_t kNodes = 6;
constexpr int64_t kInputLen = 12;
constexpr int64_t kHorizon = 12;

class InferServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticTrafficOptions options;
    options.network.num_nodes = kNodes;
    options.num_steps = 600;
    options.seed = 31;
    traffic_ = data::GenerateSyntheticTraffic(options);
    scaler_.Fit(traffic_.dataset.values, 400, true);

    infer::SessionOptions session_options;
    session_options.num_nodes = kNodes;
    session_options.input_len = kInputLen;
    session_options.steps_per_day = traffic_.dataset.steps_per_day;
    Rng rng(5);
    session_ = infer::InferenceSession::Wrap(
        std::make_unique<TinyModel>(kNodes, kHorizon, rng), scaler_,
        session_options);
    ASSERT_NE(session_, nullptr);
  }

  void TearDown() override { fault::DisarmAllFaultPoints(); }

  infer::ForecastRequest MakeRequest(int64_t start) const {
    infer::ForecastRequest request;
    const std::vector<float>& values = traffic_.dataset.values.Data();
    request.window.assign(values.data() + start * kNodes,
                          values.data() + (start + kInputLen) * kNodes);
    request.time_of_day = traffic_.dataset.TimeOfDay(start);
    request.day_of_week = traffic_.dataset.DayOfWeek(start);
    return request;
  }

  data::SyntheticTraffic traffic_;
  data::StandardScaler scaler_;
  std::unique_ptr<infer::InferenceSession> session_;
};

// The TSan target: 8 producers hammer Submit while the dispatcher batches.
// Every future resolves with the forecast the session gives the same
// request on its own.
TEST_F(InferServerTest, EightConcurrentSubmittersGetCorrectForecasts) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20;
  constexpr int kStarts = 50;

  // Per-start references, computed serially before the server exists.
  std::vector<std::vector<float>> reference(kStarts);
  for (int s = 0; s < kStarts; ++s) {
    const infer::Forecast f = session_->PredictOne(MakeRequest(s));
    ASSERT_TRUE(f.ok) << f.error;
    reference[static_cast<size_t>(s)] = f.values;
  }

  infer::BatchingOptions options;
  options.max_batch_size = 8;
  options.max_wait_us = 500;
  options.max_queue_depth = 0;  // unbounded: nothing may be shed here
  infer::BatchingServer server(session_.get(), options);

  std::vector<std::vector<std::future<infer::Forecast>>> futures(kThreads);
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int start = (t * kPerThread + i) % kStarts;
        futures[static_cast<size_t>(t)].push_back(
            server.Submit(MakeRequest(start)));
      }
    });
  }
  for (std::thread& p : producers) p.join();

  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      infer::Forecast f = futures[static_cast<size_t>(t)]
                              [static_cast<size_t>(i)].get();
      ASSERT_TRUE(f.ok) << f.error;
      const int start = (t * kPerThread + i) % kStarts;
      EXPECT_EQ(f.values, reference[static_cast<size_t>(start)])
          << "thread " << t << " request " << i;
    }
  }

  server.Shutdown();
  const infer::BatchingServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.completed, kThreads * kPerThread);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.cancelled, 0);
  EXPECT_GT(stats.batches, 0);
}

TEST_F(InferServerTest, IdenticalRequestsInOneBatchForecastIdentically) {
  infer::BatchingOptions options;
  options.max_batch_size = 8;
  options.max_wait_us = 1'000'000;  // only a full batch flushes
  infer::BatchingServer server(session_.get(), options);

  std::vector<std::future<infer::Forecast>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(server.Submit(MakeRequest(3)));
  infer::Forecast first = futures[0].get();
  ASSERT_TRUE(first.ok) << first.error;
  for (size_t i = 1; i < futures.size(); ++i) {
    const infer::Forecast f = futures[i].get();
    ASSERT_TRUE(f.ok);
    EXPECT_EQ(f.values, first.values) << "slot " << i;
  }
  EXPECT_EQ(server.stats().full_flushes, 1);
}

// Sparse traffic must never stall: with a batch that cannot fill, the
// max-wait timer flushes whatever is queued.
TEST_F(InferServerTest, MaxWaitFlushesSparseTraffic) {
  infer::BatchingOptions options;
  options.max_batch_size = 64;
  options.max_wait_us = 2000;
  infer::BatchingServer server(session_.get(), options);

  for (int i = 0; i < 3; ++i) {
    std::future<infer::Forecast> future = server.Submit(MakeRequest(i));
    ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready)
        << "max-wait flush never fired";
    EXPECT_TRUE(future.get().ok);
  }

  const infer::BatchingServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 3);
  EXPECT_GE(stats.timeout_flushes, 1);
  EXPECT_EQ(stats.full_flushes, 0);
}

// Fault point "infer.slow_consumer": a dispatcher stalled in the model does
// not wedge the queue — requests arriving during the stall are served by
// the following flushes.
TEST_F(InferServerTest, SlowConsumerStillServesEveryRequest) {
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;  // event-shaped: just fire
  script.repeat = true;
  fault::ArmFaultPoint("infer.slow_consumer", script);

  infer::BatchingOptions options;
  options.max_batch_size = 4;
  options.max_wait_us = 1000;
  options.warmup = false;
  infer::BatchingServer server(session_.get(), options);

  std::vector<std::future<infer::Forecast>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.Submit(MakeRequest(i)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (std::future<infer::Forecast>& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    EXPECT_TRUE(f.get().ok);
  }
  const infer::BatchingServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 8);
  EXPECT_GE(stats.timeout_flushes, 1);
}

TEST_F(InferServerTest, DrainShutdownResolvesEveryQueuedFuture) {
  infer::BatchingOptions options;
  options.max_batch_size = 64;
  options.max_wait_us = 60'000'000;  // the timer must not beat Shutdown
  infer::BatchingServer server(session_.get(), options);

  std::vector<std::future<infer::Forecast>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(server.Submit(MakeRequest(i)));
  server.Shutdown(/*drain=*/true);

  for (std::future<infer::Forecast>& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "Shutdown returned with an unresolved future";
    EXPECT_TRUE(f.get().ok);
  }
  const infer::BatchingServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 10);
  EXPECT_EQ(stats.cancelled, 0);
  EXPECT_GE(stats.shutdown_flushes, 1);
}

TEST_F(InferServerTest, CancelShutdownResolvesEveryQueuedFutureAsCancelled) {
  infer::BatchingOptions options;
  options.max_batch_size = 64;
  options.max_wait_us = 60'000'000;
  infer::BatchingServer server(session_.get(), options);

  std::vector<std::future<infer::Forecast>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(server.Submit(MakeRequest(i)));
  server.Shutdown(/*drain=*/false);

  for (std::future<infer::Forecast>& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const infer::Forecast forecast = f.get();
    EXPECT_FALSE(forecast.ok);
    EXPECT_EQ(forecast.error, "cancelled");
  }
  const infer::BatchingServerStats stats = server.stats();
  EXPECT_EQ(stats.cancelled, 5);
  EXPECT_EQ(stats.completed, 0);
}

TEST_F(InferServerTest, SubmitAfterShutdownIsRejected) {
  infer::BatchingOptions options;
  infer::BatchingServer server(session_.get(), options);
  server.Shutdown();

  std::future<infer::Forecast> future = server.Submit(MakeRequest(0));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const infer::Forecast forecast = future.get();
  EXPECT_FALSE(forecast.ok);
  EXPECT_EQ(forecast.error, "shutting down");
  EXPECT_EQ(server.stats().rejected, 1);
}

TEST_F(InferServerTest, MalformedRequestRejectedBeforeQueueing) {
  infer::BatchingOptions options;
  infer::BatchingServer server(session_.get(), options);

  infer::ForecastRequest bad = MakeRequest(0);
  bad.window.resize(3);
  std::future<infer::Forecast> future = server.Submit(std::move(bad));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const infer::Forecast forecast = future.get();
  EXPECT_FALSE(forecast.ok);
  EXPECT_NE(forecast.error.find("bad request"), std::string::npos);
  EXPECT_EQ(server.stats().rejected, 1);
  EXPECT_EQ(server.stats().submitted, 0);
}

// Backpressure: with the dispatcher artificially slowed, a bounded queue
// sheds load with "queue full" instead of buffering without limit — and
// every request it did accept still completes.
TEST_F(InferServerTest, BoundedQueueShedsLoadUnderPressure) {
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;
  script.repeat = true;
  fault::ArmFaultPoint("infer.slow_consumer", script);

  infer::BatchingOptions options;
  options.max_batch_size = 1;
  options.max_wait_us = 0;
  options.max_queue_depth = 2;
  options.warmup = false;
  infer::BatchingServer server(session_.get(), options);

  std::vector<std::future<infer::Forecast>> futures;
  for (int i = 0; i < 12; ++i) futures.push_back(server.Submit(MakeRequest(i)));

  int64_t ok_count = 0;
  int64_t shed = 0;
  for (std::future<infer::Forecast>& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    const infer::Forecast forecast = f.get();
    if (forecast.ok) {
      ++ok_count;
    } else {
      // Satellite: the rejection is typed and carries its context — queue
      // depth/capacity and the active batch size — plus a retry hint.
      EXPECT_EQ(forecast.reason, infer::RejectReason::kQueueFull);
      EXPECT_THAT(forecast.error, ::testing::HasSubstr("queue full"));
      EXPECT_THAT(forecast.error, ::testing::HasSubstr("depth 2/2"));
      EXPECT_THAT(forecast.error, ::testing::HasSubstr("active batch"));
      EXPECT_GT(forecast.retry_after_us, 0);
      EXPECT_TRUE(infer::IsRetryableReject(forecast.reason));
      ++shed;
    }
  }
  EXPECT_GE(shed, 1) << "a 20ms/request consumer never filled a depth-2 queue";
  EXPECT_EQ(ok_count + shed, 12);

  server.Shutdown();
  const infer::BatchingServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, ok_count);
  EXPECT_EQ(stats.rejected, shed);
  EXPECT_EQ(stats.rejected_queue_full, shed);  // per-reason shed counter
  EXPECT_EQ(stats.completed, ok_count);
  EXPECT_LE(stats.max_queue_depth_seen, 2);
}

// The plan-replay TSan target: the server's warmup captures execution plans
// (sizes 1 and max_batch_size), so 8 concurrent submitters are served from
// plan replays — which must match a plans-off twin session bitwise.
TEST_F(InferServerTest, EightConcurrentSubmittersAreServedFromPlans) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 12;
  constexpr int kStarts = 24;

  // Eager references from a twin session around identically-seeded weights.
  infer::SessionOptions eager_options;
  eager_options.num_nodes = kNodes;
  eager_options.input_len = kInputLen;
  eager_options.steps_per_day = traffic_.dataset.steps_per_day;
  eager_options.use_plans = false;
  Rng rng(5);  // same seed as the fixture session's model
  auto eager = infer::InferenceSession::Wrap(
      std::make_unique<TinyModel>(kNodes, kHorizon, rng), scaler_,
      eager_options);
  ASSERT_NE(eager, nullptr);
  std::vector<std::vector<float>> reference(kStarts);
  for (int s = 0; s < kStarts; ++s) {
    const infer::Forecast f = eager->PredictOne(MakeRequest(s));
    ASSERT_TRUE(f.ok) << f.error;
    reference[static_cast<size_t>(s)] = f.values;
  }

  infer::BatchingOptions options;
  options.max_batch_size = 8;
  options.max_wait_us = 500;
  options.max_queue_depth = 0;
  infer::BatchingServer server(session_.get(), options);
  ASSERT_EQ(session_->planned_batch_sizes(),
            (std::vector<int64_t>{1, 8}));
  const int64_t replays_before = session_->session_stats().plan_replays;

  std::vector<std::vector<std::future<infer::Forecast>>> futures(kThreads);
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int start = (t * kPerThread + i) % kStarts;
        futures[static_cast<size_t>(t)].push_back(
            server.Submit(MakeRequest(start)));
      }
    });
  }
  for (std::thread& p : producers) p.join();

  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      infer::Forecast f = futures[static_cast<size_t>(t)]
                              [static_cast<size_t>(i)].get();
      ASSERT_TRUE(f.ok) << f.error;
      const int start = (t * kPerThread + i) % kStarts;
      EXPECT_EQ(f.values, reference[static_cast<size_t>(start)])
          << "thread " << t << " request " << i;
    }
  }
  server.Shutdown();

  // Coalesced batches pad into the size-8 plan (or hit size 1 exactly), so
  // the bulk of the traffic must have been replays.
  EXPECT_GT(session_->session_stats().plan_replays, replays_before);
  EXPECT_EQ(session_->session_stats().plan_invalidations, 0);
}

// A request still queued past its deadline budget is dropped before
// dispatch — it resolves as kDeadlineExceeded and never pads a batch.
TEST_F(InferServerTest, ExpiredDeadlineIsDroppedBeforeDispatch) {
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;
  script.repeat = true;
  fault::ArmFaultPoint("infer.slow_consumer", script);  // 20ms per batch

  infer::BatchingOptions options;
  options.max_batch_size = 1;
  options.max_wait_us = 0;
  options.max_queue_depth = 0;
  options.warmup = false;
  infer::BatchingServer server(session_.get(), options);

  // The first request occupies the (slowed) dispatcher; the second carries
  // a 1ms budget and expires in the queue behind it.
  std::future<infer::Forecast> head = server.Submit(MakeRequest(0));
  infer::ForecastRequest doomed = MakeRequest(1);
  doomed.deadline_us = 1000;
  std::future<infer::Forecast> expired = server.Submit(std::move(doomed));

  const infer::Forecast head_forecast = head.get();
  EXPECT_TRUE(head_forecast.ok) << head_forecast.error;
  const infer::Forecast expired_forecast = expired.get();
  EXPECT_FALSE(expired_forecast.ok);
  EXPECT_EQ(expired_forecast.reason, infer::RejectReason::kDeadlineExceeded);
  EXPECT_FALSE(infer::IsRetryableReject(expired_forecast.reason));

  server.Shutdown();
  const infer::BatchingServerStats stats = server.stats();
  EXPECT_EQ(stats.expired_deadlines, 1);
  EXPECT_EQ(stats.submitted, 2);   // both were *accepted*...
  EXPECT_EQ(stats.completed, 1);   // ...but only one was served
  EXPECT_EQ(stats.rejected, 0);    // expiry is not a rejection
}

// The "server.deadline" chaos seam treats a request's budget as already
// spent at admission, simulating a deadline storm without waiting.
TEST_F(InferServerTest, InjectedDeadlineFaultExpiresTheRequest) {
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;
  fault::ArmFaultPoint("server.deadline", script);

  infer::BatchingOptions options;
  options.max_batch_size = 4;
  options.max_wait_us = 2000;
  options.warmup = false;
  infer::BatchingServer server(session_.get(), options);

  infer::ForecastRequest request = MakeRequest(0);
  request.deadline_us = 60'000'000;  // a minute — only the fault can expire it
  const infer::Forecast forecast = server.Submit(std::move(request)).get();
  EXPECT_FALSE(forecast.ok);
  EXPECT_EQ(forecast.reason, infer::RejectReason::kDeadlineExceeded);

  // The fault was one-shot: the same request now survives its budget.
  infer::ForecastRequest healthy = MakeRequest(0);
  healthy.deadline_us = 60'000'000;
  const infer::Forecast served = server.Submit(std::move(healthy)).get();
  EXPECT_TRUE(served.ok) << served.error;
  server.Shutdown();
  EXPECT_EQ(server.stats().expired_deadlines, 1);
}

// Token bucket: burst_ admits pass immediately, the next is rate limited
// with a refill-shaped retry hint.
TEST_F(InferServerTest, TokenBucketRateLimitsBeyondBurst) {
  infer::BatchingOptions options;
  options.max_batch_size = 8;
  options.max_wait_us = 500;
  options.warmup = false;
  options.admission.rate_rps = 1.0;  // refill far slower than the test runs
  options.admission.burst = 2.0;
  infer::BatchingServer server(session_.get(), options);

  std::vector<std::future<infer::Forecast>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(server.Submit(MakeRequest(i)));
  int64_t limited = 0;
  for (std::future<infer::Forecast>& f : futures) {
    const infer::Forecast forecast = f.get();
    if (forecast.ok) continue;
    EXPECT_EQ(forecast.reason, infer::RejectReason::kRateLimited);
    EXPECT_GT(forecast.retry_after_us, 0);
    ++limited;
  }
  EXPECT_EQ(limited, 2);  // burst of 2 passed, the rest hit an empty bucket

  server.Shutdown();
  const infer::BatchingServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_rate_limited, 2);
  EXPECT_EQ(stats.rejected, 2);
}

// The "server.degrade" seam forces tier kShedding, which refuses
// low-priority work at admission while high-priority traffic still serves.
TEST_F(InferServerTest, SheddingTierRefusesLowPriorityOnly) {
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;
  fault::ArmFaultPoint("server.degrade", script);

  infer::BatchingOptions options;
  options.max_batch_size = 4;
  options.max_wait_us = 500;
  options.warmup = false;
  infer::BatchingServer server(session_.get(), options);

  infer::ForecastRequest low = MakeRequest(0);
  low.priority = infer::RequestPriority::kLow;
  const infer::Forecast shed = server.Submit(std::move(low)).get();
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.reason, infer::RejectReason::kShedLowPriority);
  EXPECT_GT(shed.retry_after_us, 0);
  EXPECT_TRUE(infer::IsRetryableReject(shed.reason));

  // Recovery is hysteretic, so the tier is still kShedding here — but a
  // high-priority request passes the gate regardless.
  const infer::Forecast served = server.Submit(MakeRequest(0)).get();
  EXPECT_TRUE(served.ok) << served.error;

  server.Shutdown();
  const infer::BatchingServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_low_priority, 1);
  EXPECT_GE(stats.degrade_transitions, 1);
}

// The "server.admit" seam injects an admission-path failure: the caller
// sees a typed, retryable kOverloaded — never a crash or a hung future.
TEST_F(InferServerTest, InjectedAdmitFaultIsTypedAndTransient) {
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;
  fault::ArmFaultPoint("server.admit", script);

  infer::BatchingOptions options;
  options.max_batch_size = 4;
  options.max_wait_us = 500;
  options.warmup = false;
  infer::BatchingServer server(session_.get(), options);

  const infer::Forecast faulted = server.Submit(MakeRequest(0)).get();
  EXPECT_FALSE(faulted.ok);
  EXPECT_EQ(faulted.reason, infer::RejectReason::kOverloaded);
  EXPECT_TRUE(infer::IsRetryableReject(faulted.reason));
  EXPECT_THAT(faulted.error, ::testing::HasSubstr("admission fault"));

  const infer::Forecast served = server.Submit(MakeRequest(0)).get();
  EXPECT_TRUE(served.ok) << served.error;
  server.Shutdown();
  EXPECT_EQ(server.stats().rejected_overloaded, 1);
}

// Client-side backoff: a one-shot admission fault costs one retry, then
// the request is served. (BackoffDelayUs itself is pinned in
// overload_test.cc.)
TEST_F(InferServerTest, SubmitWithRetrySurvivesTransientReject) {
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;
  fault::ArmFaultPoint("server.admit", script);

  infer::BatchingOptions options;
  options.max_batch_size = 4;
  options.max_wait_us = 500;
  options.warmup = false;
  infer::BatchingServer server(session_.get(), options);

  infer::RetryPolicy policy;
  policy.initial_backoff_us = 100;  // keep the test fast
  policy.jitter_seed = 7;
  const infer::RetryResult result =
      infer::SubmitWithRetry(&server, MakeRequest(0), policy);
  EXPECT_TRUE(result.forecast.ok) << result.forecast.error;
  EXPECT_EQ(result.attempts, 2);
  EXPECT_GT(result.backoff_us, 0);

  // A bad request is permanent: one attempt, no backoff.
  infer::ForecastRequest malformed = MakeRequest(0);
  malformed.window.pop_back();
  const infer::RetryResult rejected =
      infer::SubmitWithRetry(&server, malformed, policy);
  EXPECT_FALSE(rejected.forecast.ok);
  EXPECT_EQ(rejected.forecast.reason, infer::RejectReason::kBadRequest);
  EXPECT_EQ(rejected.attempts, 1);
  EXPECT_EQ(rejected.backoff_us, 0);
  server.Shutdown();
}

// The drain race regression (TSan target): Shutdown(drain) lands while
// producers are still submitting and the dispatcher is mid-coalesce on the
// flush timer. Every future must resolve — served or typed kShuttingDown —
// and the counters must reconcile exactly. No deadlock, no leaked future.
TEST_F(InferServerTest, DrainUnderLoadWithConcurrentSubmitters) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;

  infer::BatchingOptions options;
  options.max_batch_size = 4;
  options.max_wait_us = 2000;  // long enough that drain interrupts a wait
  options.max_queue_depth = 0;
  options.warmup = false;
  infer::BatchingServer server(session_.get(), options);

  std::vector<std::vector<std::future<infer::Forecast>>> futures(kThreads);
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        futures[static_cast<size_t>(t)].push_back(
            server.Submit(MakeRequest((t * kPerThread + i) % 40)));
      }
    });
  }
  // Drain while the producers race: some submissions land before the
  // shutdown flag, some after.
  server.Shutdown(/*drain=*/true);
  for (std::thread& p : producers) p.join();

  int64_t served = 0;
  int64_t refused = 0;
  for (auto& per_thread : futures) {
    for (std::future<infer::Forecast>& f : per_thread) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
                std::future_status::ready)
          << "a future leaked through the drain";
      const infer::Forecast forecast = f.get();
      if (forecast.ok) {
        ++served;
      } else {
        EXPECT_EQ(forecast.reason, infer::RejectReason::kShuttingDown);
        ++refused;
      }
    }
  }
  EXPECT_EQ(served + refused, kThreads * kPerThread);

  const infer::BatchingServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, served);  // drain served everything accepted
  EXPECT_EQ(stats.completed, served);
  EXPECT_EQ(stats.rejected_shutdown, refused);
  EXPECT_EQ(stats.cancelled, 0);
}

// SwapSession mid-load: requests dispatched after the swap are served by
// the new weights, bitwise equal to the new session running alone.
TEST_F(InferServerTest, SwapSessionServesNewWeightsBitwise) {
  infer::SessionOptions session_options;
  session_options.num_nodes = kNodes;
  session_options.input_len = kInputLen;
  session_options.steps_per_day = traffic_.dataset.steps_per_day;

  // References from a twin of the *next* session (different seed => weights
  // genuinely differ from the fixture session's).
  Rng twin_rng(11);
  auto twin = infer::InferenceSession::Wrap(
      std::make_unique<TinyModel>(kNodes, kHorizon, twin_rng), scaler_,
      session_options);
  ASSERT_NE(twin, nullptr);
  const infer::Forecast reference = twin->PredictOne(MakeRequest(3));
  ASSERT_TRUE(reference.ok) << reference.error;
  const infer::Forecast old_reference = session_->PredictOne(MakeRequest(3));
  ASSERT_TRUE(old_reference.ok) << old_reference.error;
  ASSERT_NE(reference.values, old_reference.values)
      << "seeds 5 and 11 produced identical weights; the swap is untestable";

  Rng rng(5);
  std::shared_ptr<infer::InferenceSession> first =
      infer::InferenceSession::Wrap(
          std::make_unique<TinyModel>(kNodes, kHorizon, rng), scaler_,
          session_options);
  ASSERT_NE(first, nullptr);
  infer::BatchingOptions options;
  options.max_batch_size = 4;
  options.max_wait_us = 500;
  infer::BatchingServer server(first, options);

  const infer::Forecast before = server.Submit(MakeRequest(3)).get();
  ASSERT_TRUE(before.ok) << before.error;
  EXPECT_EQ(before.values, old_reference.values);

  Rng next_rng(11);
  std::shared_ptr<infer::InferenceSession> next =
      infer::InferenceSession::Wrap(
          std::make_unique<TinyModel>(kNodes, kHorizon, next_rng), scaler_,
          session_options);
  ASSERT_NE(next, nullptr);
  server.SwapSession(next);

  const infer::Forecast after = server.Submit(MakeRequest(3)).get();
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.values, reference.values);  // bitwise, not approximately

  server.Shutdown();
  EXPECT_EQ(server.stats().session_swaps, 1);
  EXPECT_EQ(server.session().get(), next.get());
}

}  // namespace
}  // namespace d2stgnn
