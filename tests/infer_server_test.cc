// Tests of the micro-batching request server: concurrent submitters (the
// TSan target), coalescing policy (full flush vs max-wait flush), slow
// consumers, bounded-queue backpressure, and graceful shutdown semantics
// (drain resolves everything, cancel resolves everything as cancelled).

#include "infer/batching_server.h"

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "data/sliding_window.h"
#include "data/synthetic_traffic.h"
#include "nn/linear.h"
#include "train/forecasting_model.h"

namespace d2stgnn {
namespace {

// Linear readout of the last frame (same as train_test.cc). Its forward is
// elementwise per sample, so a request's forecast is bitwise independent of
// which batch the dispatcher put it in — the property the equality
// assertions below lean on.
class TinyModel : public train::ForecastingModel {
 public:
  TinyModel(int64_t num_nodes, int64_t horizon, Rng& rng)
      : ForecastingModel("tiny"),
        num_nodes_(num_nodes),
        horizon_(horizon),
        proj_(data::kInputFeatures, horizon, rng) {
    RegisterChild(&proj_);
  }

  Tensor Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size;
    const Tensor last = Reshape(
        Slice(batch.x, 1, batch.input_len - 1, batch.input_len),
        {b, num_nodes_, data::kInputFeatures});
    Tensor out = proj_.Forward(last);
    out = Permute(out, {0, 2, 1});
    return Reshape(out, {b, horizon_, num_nodes_, 1});
  }

  int64_t horizon() const override { return horizon_; }

 private:
  int64_t num_nodes_;
  int64_t horizon_;
  nn::Linear proj_;
};

constexpr int64_t kNodes = 6;
constexpr int64_t kInputLen = 12;
constexpr int64_t kHorizon = 12;

class InferServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticTrafficOptions options;
    options.network.num_nodes = kNodes;
    options.num_steps = 600;
    options.seed = 31;
    traffic_ = data::GenerateSyntheticTraffic(options);
    scaler_.Fit(traffic_.dataset.values, 400, true);

    infer::SessionOptions session_options;
    session_options.num_nodes = kNodes;
    session_options.input_len = kInputLen;
    session_options.steps_per_day = traffic_.dataset.steps_per_day;
    Rng rng(5);
    session_ = infer::InferenceSession::Wrap(
        std::make_unique<TinyModel>(kNodes, kHorizon, rng), scaler_,
        session_options);
    ASSERT_NE(session_, nullptr);
  }

  void TearDown() override { fault::DisarmAllFaultPoints(); }

  infer::ForecastRequest MakeRequest(int64_t start) const {
    infer::ForecastRequest request;
    const std::vector<float>& values = traffic_.dataset.values.Data();
    request.window.assign(values.data() + start * kNodes,
                          values.data() + (start + kInputLen) * kNodes);
    request.time_of_day = traffic_.dataset.TimeOfDay(start);
    request.day_of_week = traffic_.dataset.DayOfWeek(start);
    return request;
  }

  data::SyntheticTraffic traffic_;
  data::StandardScaler scaler_;
  std::unique_ptr<infer::InferenceSession> session_;
};

// The TSan target: 8 producers hammer Submit while the dispatcher batches.
// Every future resolves with the forecast the session gives the same
// request on its own.
TEST_F(InferServerTest, EightConcurrentSubmittersGetCorrectForecasts) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20;
  constexpr int kStarts = 50;

  // Per-start references, computed serially before the server exists.
  std::vector<std::vector<float>> reference(kStarts);
  for (int s = 0; s < kStarts; ++s) {
    const infer::Forecast f = session_->PredictOne(MakeRequest(s));
    ASSERT_TRUE(f.ok) << f.error;
    reference[static_cast<size_t>(s)] = f.values;
  }

  infer::BatchingOptions options;
  options.max_batch_size = 8;
  options.max_wait_us = 500;
  options.max_queue_depth = 0;  // unbounded: nothing may be shed here
  infer::BatchingServer server(session_.get(), options);

  std::vector<std::vector<std::future<infer::Forecast>>> futures(kThreads);
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int start = (t * kPerThread + i) % kStarts;
        futures[static_cast<size_t>(t)].push_back(
            server.Submit(MakeRequest(start)));
      }
    });
  }
  for (std::thread& p : producers) p.join();

  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      infer::Forecast f = futures[static_cast<size_t>(t)]
                              [static_cast<size_t>(i)].get();
      ASSERT_TRUE(f.ok) << f.error;
      const int start = (t * kPerThread + i) % kStarts;
      EXPECT_EQ(f.values, reference[static_cast<size_t>(start)])
          << "thread " << t << " request " << i;
    }
  }

  server.Shutdown();
  const infer::BatchingServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.completed, kThreads * kPerThread);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.cancelled, 0);
  EXPECT_GT(stats.batches, 0);
}

TEST_F(InferServerTest, IdenticalRequestsInOneBatchForecastIdentically) {
  infer::BatchingOptions options;
  options.max_batch_size = 8;
  options.max_wait_us = 1'000'000;  // only a full batch flushes
  infer::BatchingServer server(session_.get(), options);

  std::vector<std::future<infer::Forecast>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(server.Submit(MakeRequest(3)));
  infer::Forecast first = futures[0].get();
  ASSERT_TRUE(first.ok) << first.error;
  for (size_t i = 1; i < futures.size(); ++i) {
    const infer::Forecast f = futures[i].get();
    ASSERT_TRUE(f.ok);
    EXPECT_EQ(f.values, first.values) << "slot " << i;
  }
  EXPECT_EQ(server.stats().full_flushes, 1);
}

// Sparse traffic must never stall: with a batch that cannot fill, the
// max-wait timer flushes whatever is queued.
TEST_F(InferServerTest, MaxWaitFlushesSparseTraffic) {
  infer::BatchingOptions options;
  options.max_batch_size = 64;
  options.max_wait_us = 2000;
  infer::BatchingServer server(session_.get(), options);

  for (int i = 0; i < 3; ++i) {
    std::future<infer::Forecast> future = server.Submit(MakeRequest(i));
    ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready)
        << "max-wait flush never fired";
    EXPECT_TRUE(future.get().ok);
  }

  const infer::BatchingServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 3);
  EXPECT_GE(stats.timeout_flushes, 1);
  EXPECT_EQ(stats.full_flushes, 0);
}

// Fault point "infer.slow_consumer": a dispatcher stalled in the model does
// not wedge the queue — requests arriving during the stall are served by
// the following flushes.
TEST_F(InferServerTest, SlowConsumerStillServesEveryRequest) {
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;  // event-shaped: just fire
  script.repeat = true;
  fault::ArmFaultPoint("infer.slow_consumer", script);

  infer::BatchingOptions options;
  options.max_batch_size = 4;
  options.max_wait_us = 1000;
  options.warmup = false;
  infer::BatchingServer server(session_.get(), options);

  std::vector<std::future<infer::Forecast>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.Submit(MakeRequest(i)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (std::future<infer::Forecast>& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    EXPECT_TRUE(f.get().ok);
  }
  const infer::BatchingServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 8);
  EXPECT_GE(stats.timeout_flushes, 1);
}

TEST_F(InferServerTest, DrainShutdownResolvesEveryQueuedFuture) {
  infer::BatchingOptions options;
  options.max_batch_size = 64;
  options.max_wait_us = 60'000'000;  // the timer must not beat Shutdown
  infer::BatchingServer server(session_.get(), options);

  std::vector<std::future<infer::Forecast>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(server.Submit(MakeRequest(i)));
  server.Shutdown(/*drain=*/true);

  for (std::future<infer::Forecast>& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "Shutdown returned with an unresolved future";
    EXPECT_TRUE(f.get().ok);
  }
  const infer::BatchingServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 10);
  EXPECT_EQ(stats.cancelled, 0);
  EXPECT_GE(stats.shutdown_flushes, 1);
}

TEST_F(InferServerTest, CancelShutdownResolvesEveryQueuedFutureAsCancelled) {
  infer::BatchingOptions options;
  options.max_batch_size = 64;
  options.max_wait_us = 60'000'000;
  infer::BatchingServer server(session_.get(), options);

  std::vector<std::future<infer::Forecast>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(server.Submit(MakeRequest(i)));
  server.Shutdown(/*drain=*/false);

  for (std::future<infer::Forecast>& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const infer::Forecast forecast = f.get();
    EXPECT_FALSE(forecast.ok);
    EXPECT_EQ(forecast.error, "cancelled");
  }
  const infer::BatchingServerStats stats = server.stats();
  EXPECT_EQ(stats.cancelled, 5);
  EXPECT_EQ(stats.completed, 0);
}

TEST_F(InferServerTest, SubmitAfterShutdownIsRejected) {
  infer::BatchingOptions options;
  infer::BatchingServer server(session_.get(), options);
  server.Shutdown();

  std::future<infer::Forecast> future = server.Submit(MakeRequest(0));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const infer::Forecast forecast = future.get();
  EXPECT_FALSE(forecast.ok);
  EXPECT_EQ(forecast.error, "shutting down");
  EXPECT_EQ(server.stats().rejected, 1);
}

TEST_F(InferServerTest, MalformedRequestRejectedBeforeQueueing) {
  infer::BatchingOptions options;
  infer::BatchingServer server(session_.get(), options);

  infer::ForecastRequest bad = MakeRequest(0);
  bad.window.resize(3);
  std::future<infer::Forecast> future = server.Submit(std::move(bad));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const infer::Forecast forecast = future.get();
  EXPECT_FALSE(forecast.ok);
  EXPECT_NE(forecast.error.find("bad request"), std::string::npos);
  EXPECT_EQ(server.stats().rejected, 1);
  EXPECT_EQ(server.stats().submitted, 0);
}

// Backpressure: with the dispatcher artificially slowed, a bounded queue
// sheds load with "queue full" instead of buffering without limit — and
// every request it did accept still completes.
TEST_F(InferServerTest, BoundedQueueShedsLoadUnderPressure) {
  fault::FaultScript script;
  script.kind = fault::FaultKind::kErrno;
  script.repeat = true;
  fault::ArmFaultPoint("infer.slow_consumer", script);

  infer::BatchingOptions options;
  options.max_batch_size = 1;
  options.max_wait_us = 0;
  options.max_queue_depth = 2;
  options.warmup = false;
  infer::BatchingServer server(session_.get(), options);

  std::vector<std::future<infer::Forecast>> futures;
  for (int i = 0; i < 12; ++i) futures.push_back(server.Submit(MakeRequest(i)));

  int64_t ok_count = 0;
  int64_t shed = 0;
  for (std::future<infer::Forecast>& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    const infer::Forecast forecast = f.get();
    if (forecast.ok) {
      ++ok_count;
    } else {
      EXPECT_EQ(forecast.error, "queue full");
      ++shed;
    }
  }
  EXPECT_GE(shed, 1) << "a 20ms/request consumer never filled a depth-2 queue";
  EXPECT_EQ(ok_count + shed, 12);

  server.Shutdown();
  const infer::BatchingServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, ok_count);
  EXPECT_EQ(stats.rejected, shed);
  EXPECT_EQ(stats.completed, ok_count);
  EXPECT_LE(stats.max_queue_depth_seen, 2);
}

// The plan-replay TSan target: the server's warmup captures execution plans
// (sizes 1 and max_batch_size), so 8 concurrent submitters are served from
// plan replays — which must match a plans-off twin session bitwise.
TEST_F(InferServerTest, EightConcurrentSubmittersAreServedFromPlans) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 12;
  constexpr int kStarts = 24;

  // Eager references from a twin session around identically-seeded weights.
  infer::SessionOptions eager_options;
  eager_options.num_nodes = kNodes;
  eager_options.input_len = kInputLen;
  eager_options.steps_per_day = traffic_.dataset.steps_per_day;
  eager_options.use_plans = false;
  Rng rng(5);  // same seed as the fixture session's model
  auto eager = infer::InferenceSession::Wrap(
      std::make_unique<TinyModel>(kNodes, kHorizon, rng), scaler_,
      eager_options);
  ASSERT_NE(eager, nullptr);
  std::vector<std::vector<float>> reference(kStarts);
  for (int s = 0; s < kStarts; ++s) {
    const infer::Forecast f = eager->PredictOne(MakeRequest(s));
    ASSERT_TRUE(f.ok) << f.error;
    reference[static_cast<size_t>(s)] = f.values;
  }

  infer::BatchingOptions options;
  options.max_batch_size = 8;
  options.max_wait_us = 500;
  options.max_queue_depth = 0;
  infer::BatchingServer server(session_.get(), options);
  ASSERT_EQ(session_->planned_batch_sizes(),
            (std::vector<int64_t>{1, 8}));
  const int64_t replays_before = session_->session_stats().plan_replays;

  std::vector<std::vector<std::future<infer::Forecast>>> futures(kThreads);
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int start = (t * kPerThread + i) % kStarts;
        futures[static_cast<size_t>(t)].push_back(
            server.Submit(MakeRequest(start)));
      }
    });
  }
  for (std::thread& p : producers) p.join();

  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      infer::Forecast f = futures[static_cast<size_t>(t)]
                              [static_cast<size_t>(i)].get();
      ASSERT_TRUE(f.ok) << f.error;
      const int start = (t * kPerThread + i) % kStarts;
      EXPECT_EQ(f.values, reference[static_cast<size_t>(start)])
          << "thread " << t << " request " << i;
    }
  }
  server.Shutdown();

  // Coalesced batches pad into the size-8 plan (or hit size 1 exactly), so
  // the bulk of the traffic must have been replays.
  EXPECT_GT(session_->session_stats().plan_replays, replays_before);
  EXPECT_EQ(session_->session_stats().plan_invalidations, 0);
}

}  // namespace
}  // namespace d2stgnn
