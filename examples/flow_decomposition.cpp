// Flow-forecasting + interpretability scenario (the paper's PEMS04/08
// setting and Fig. 2 premise): train D2STGNN on a synthetic flow dataset
// and inspect what the decoupling machinery learned —
//   * the estimation gate's diffusion proportion over the day (it should
//     rise at commute peaks, when cross-district diffusion dominates), and
//   * the self-adaptive transition matrix vs. the true road adjacency.
//
//   ./build/examples/flow_decomposition

#include <cmath>
#include <cstdio>

#include "common/table_printer.h"
#include "core/d2stgnn.h"
#include "data/presets.h"
#include "data/sliding_window.h"
#include "data/synthetic_traffic.h"
#include "tensor/ops.h"
#include "train/evaluator.h"
#include "train/trainer.h"

namespace {

using namespace d2stgnn;

std::vector<int64_t> EveryNth(const std::vector<int64_t>& v, int64_t n) {
  std::vector<int64_t> out;
  for (size_t i = 0; i < v.size(); i += static_cast<size_t>(n)) {
    out.push_back(v[i]);
  }
  return out;
}

}  // namespace

int main() {
  data::SyntheticTrafficOptions options = data::Pems08Options(0.05f);
  options.network.num_nodes = 14;
  const data::SyntheticTraffic traffic = data::GenerateSyntheticTraffic(options);
  const data::TimeSeriesDataset& dataset = traffic.dataset;
  std::printf("flow dataset %s: %lld detectors, %lld steps\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.num_nodes()),
              static_cast<long long>(dataset.num_steps()));

  data::StandardScaler scaler;
  scaler.Fit(dataset.values, dataset.num_steps() * 6 / 10, false);
  const auto splits =
      data::MakeChronologicalSplits(dataset.num_steps(), 12, 12, 0.6f, 0.2f);
  data::WindowDataLoader train_loader(&dataset, &scaler,
                                      EveryNth(splits.train, 8), 12, 12, 16);
  data::WindowDataLoader val_loader(&dataset, &scaler,
                                    EveryNth(splits.val, 8), 12, 12, 16);
  data::WindowDataLoader test_loader(&dataset, &scaler,
                                     EveryNth(splits.test, 8), 12, 12, 16);

  core::D2StgnnConfig config;
  config.num_nodes = dataset.num_nodes();
  config.hidden_dim = 16;
  config.embed_dim = 8;
  config.steps_per_day = dataset.steps_per_day;
  Rng rng(11);
  core::D2Stgnn model(config, dataset.network.adjacency, rng);

  train::TrainerOptions trainer_options;
  trainer_options.epochs = 8;
  train::Trainer trainer(&model, &scaler, trainer_options);
  trainer.Fit(&train_loader, &val_loader);
  for (const auto& h : train::EvaluateHorizons(&model, &scaler, &test_loader)) {
    std::printf("horizon %2lld: MAE %.2f  RMSE %.2f  MAPE %.2f%%\n",
                static_cast<long long>(h.horizon), h.metrics.mae,
                h.metrics.rmse, h.metrics.mape * 100.0);
  }

  // --- Interpretability 1: the self-adaptive transition matrix. ---
  // P_apt should put most of its mass where the road network has edges
  // (plus latent shortcuts the kernel threshold dropped).
  NoGradGuard no_grad;
  const Tensor apt = model.AdaptiveTransition();
  const Tensor& adj = dataset.network.adjacency;
  const int64_t n = dataset.num_nodes();
  double mass_on_edges = 0.0, mass_total = 0.0;
  int64_t edge_cells = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const float w = apt.At({i, j});
      mass_total += w;
      if (adj.At({i, j}) > 0.0f) {
        mass_on_edges += w;
        ++edge_cells;
      }
    }
  }
  const double edge_fraction =
      static_cast<double>(edge_cells) / static_cast<double>(n * (n - 1));
  std::printf(
      "\nadaptive transition: %.0f%% of off-diagonal mass on the %.0f%% of "
      "pairs that are road edges (uniform would be %.0f%%)\n",
      100.0 * mass_on_edges / mass_total, 100.0 * edge_fraction,
      100.0 * edge_fraction);

  // --- Interpretability 2: the estimation gate over the day. ---
  // Average the gate value (diffusion proportion) per time-of-day bucket
  // by probing the model on test windows.
  std::vector<double> gate_sum(8, 0.0);
  std::vector<int64_t> gate_count(8, 0);
  // The gate value is not directly exposed; probe it through the model's
  // sensitivity instead: compare the diffusion share in the synthetic
  // ground truth (available from the generator) per bucket.
  for (int64_t t = 0; t < dataset.num_steps(); ++t) {
    const int64_t bucket = dataset.TimeOfDay(t) * 8 / dataset.steps_per_day;
    for (int64_t i = 0; i < n; ++i) {
      const float dif = traffic.diffusion.At(t * n + i);
      const float inh = traffic.inherent.At(t * n + i);
      if (dif + inh > 1e-3f) {
        gate_sum[static_cast<size_t>(bucket)] += dif / (dif + inh);
        ++gate_count[static_cast<size_t>(bucket)];
      }
    }
  }
  TablePrinter gate_table({"time of day", "true diffusion share"});
  const char* buckets[] = {"00-03h", "03-06h", "06-09h", "09-12h",
                           "12-15h", "15-18h", "18-21h", "21-24h"};
  for (int b = 0; b < 8; ++b) {
    gate_table.AddRow(
        {buckets[b],
         TablePrinter::Percent(gate_sum[static_cast<size_t>(b)] /
                               std::max<int64_t>(1, gate_count[static_cast<size_t>(b)]))});
  }
  std::printf("\nground-truth diffusion share by time of day (what the "
              "estimation gate must learn to track):\n%s",
              gate_table.ToString().c_str());
  std::printf("(expected: the share peaks at the 06-09h and 15-18h commute "
              "buckets — the dynamic spatial dependency of Fig. 2(c))\n");
  return 0;
}
