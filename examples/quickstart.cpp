// Quickstart: generate a small synthetic traffic dataset, train D2STGNN on
// it with the paper's recipe, evaluate at horizons 3/6/12, and print one
// forecast.
//
//   ./build/examples/quickstart [--checkpoint-dir DIR] [--checkpoint-every N]
//                               [--resume PATH]
//
// With --checkpoint-dir, a full-state checkpoint is written every N epochs
// (and on Ctrl-C, after the current batch finishes); --resume continues a
// previous run bitwise-identically from such a checkpoint.
//
// Everything here is the public API a downstream user would touch:
//   data::      synthetic datasets, scaler, sliding windows
//   core::      the D2STGNN model and its configuration
//   train::     Trainer (Adam + masked MAE + curriculum learning)
//   metrics::   masked MAE / RMSE / MAPE

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>

#include "common/flags.h"
#include "common/rng.h"
#include "core/d2stgnn.h"
#include "data/presets.h"
#include "data/sliding_window.h"
#include "data/synthetic_traffic.h"
#include "train/evaluator.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace d2stgnn;

  // Fault-tolerance flags (see DESIGN.md §8).
  std::string checkpoint_dir;
  std::string resume_from;
  int64_t checkpoint_every = 1;
  FlagParser flags("quickstart",
                   "train D2STGNN on a small synthetic dataset end to end");
  flags.AddString("checkpoint-dir", &checkpoint_dir,
                  "write full-state checkpoints into this directory");
  flags.AddInt("checkpoint-every", &checkpoint_every,
               "checkpoint every N epochs (default 1)");
  flags.AddString("resume", &resume_from,
                  "resume bitwise-identically from this checkpoint");
  if (!flags.Parse(argc, argv)) {
    if (flags.help_requested()) {
      std::fputs(flags.Usage().c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr, "%s: %s\n%s", argv[0], flags.error().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (!checkpoint_dir.empty()) ::mkdir(checkpoint_dir.c_str(), 0755);

  // 1. Data: a METR-LA-like synthetic speed dataset (16 sensors, 16 days).
  data::SyntheticTrafficOptions options = data::MetrLaOptions(/*scale=*/0.05f);
  options.network.num_nodes = 16;
  const data::SyntheticTraffic traffic = data::GenerateSyntheticTraffic(options);
  const data::TimeSeriesDataset& dataset = traffic.dataset;
  std::printf("dataset %s: %lld sensors x %lld steps\n", dataset.name.c_str(),
              static_cast<long long>(dataset.num_nodes()),
              static_cast<long long>(dataset.num_steps()));

  // 2. Preprocessing: chronological 70/10/20 split, z-score normalization
  //    fit on the training range, 12-in / 12-out sliding windows.
  const auto splits =
      data::MakeChronologicalSplits(dataset.num_steps(), 12, 12, 0.7f, 0.1f);
  data::StandardScaler scaler;
  scaler.Fit(dataset.values, dataset.num_steps() * 7 / 10, /*mask_zeros=*/true);

  // Subsample windows so the example finishes in seconds on one core.
  auto every_nth = [](const std::vector<int64_t>& v, int64_t n) {
    std::vector<int64_t> out;
    for (size_t i = 0; i < v.size(); i += static_cast<size_t>(n)) {
      out.push_back(v[i]);
    }
    return out;
  };
  data::WindowDataLoader train_loader(&dataset, &scaler,
                                      every_nth(splits.train, 8), 12, 12, 16);
  data::WindowDataLoader val_loader(&dataset, &scaler,
                                    every_nth(splits.val, 8), 12, 12, 16);
  data::WindowDataLoader test_loader(&dataset, &scaler,
                                     every_nth(splits.test, 8), 12, 12, 16);

  // 3. Model: D2STGNN with the paper's architecture at reduced width.
  core::D2StgnnConfig config;
  config.num_nodes = dataset.num_nodes();
  config.hidden_dim = 16;
  config.embed_dim = 8;
  config.steps_per_day = dataset.steps_per_day;
  Rng rng(42);
  core::D2Stgnn model(config, dataset.network.adjacency, rng);
  std::printf("model: %lld parameters, %lld decoupled layers\n",
              static_cast<long long>(model.ParameterCount()),
              static_cast<long long>(config.num_layers));

  // 4. Training: Adam + masked MAE + curriculum learning + early stopping.
  train::TrainerOptions trainer_options;
  trainer_options.epochs = 8;
  trainer_options.verbose = true;
  trainer_options.checkpoint_dir = checkpoint_dir;
  trainer_options.checkpoint_every = checkpoint_every;
  trainer_options.resume_from = resume_from;
  trainer_options.handle_signals = !checkpoint_dir.empty();
  train::Trainer trainer(&model, &scaler, trainer_options);
  const train::FitResult fit = trainer.Fit(&train_loader, &val_loader);
  if (fit.stop_reason == train::StopReason::kResumeFailed) {
    std::fprintf(stderr, "cannot resume from %s\n", resume_from.c_str());
    return 1;
  }
  if (fit.stop_reason == train::StopReason::kInterrupted) {
    std::printf("interrupted; resume with --resume %s\n",
                fit.interrupt_checkpoint.c_str());
    return 0;
  }
  std::printf("best validation MAE %.3f at epoch %lld (%.2fs/epoch)\n",
              fit.best_val_mae, static_cast<long long>(fit.best_epoch),
              fit.mean_epoch_seconds);

  // 5. Evaluation at the paper's horizons (15 / 30 / 60 minutes).
  for (const auto& h :
       train::EvaluateHorizons(&model, &scaler, &test_loader)) {
    std::printf("horizon %2lld: MAE %.3f  RMSE %.3f  MAPE %.2f%%\n",
                static_cast<long long>(h.horizon), h.metrics.mae,
                h.metrics.rmse, h.metrics.mape * 100.0);
  }

  // 6. One forecast: next hour for sensor 0.
  const data::Batch batch = test_loader.GetBatch(0);
  NoGradGuard no_grad;
  model.SetTraining(false);
  const Tensor prediction = scaler.InverseTransform(model.Forward(batch));
  std::printf("\nsensor 0, next 12 steps (5-minute intervals):\n  pred:");
  for (int64_t t = 0; t < 12; ++t) {
    std::printf(" %5.1f", prediction.At({0, t, 0, 0}));
  }
  std::printf("\n  true:");
  for (int64_t t = 0; t < 12; ++t) {
    std::printf(" %5.1f", batch.y.At({0, t, 0, 0}));
  }
  std::printf("\n");
  return 0;
}
