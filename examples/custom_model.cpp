// Building a custom forecasting model on the library's substrate: shows the
// tensor/autograd engine, the nn modules, and the trainer working with a
// user-defined architecture — here a small "GRU + graph convolution" hybrid
// defined from scratch in ~60 lines.
//
//   ./build/examples/custom_model

#include <cstdio>

#include "common/rng.h"
#include "data/presets.h"
#include "data/sliding_window.h"
#include "data/synthetic_traffic.h"
#include "graph/transition.h"
#include "nn/gru_cell.h"
#include "nn/linear.h"
#include "tensor/ops.h"
#include "train/evaluator.h"
#include "train/trainer.h"

namespace {

using namespace d2stgnn;

// A user-defined model: project -> graph-convolve each frame -> GRU over
// time -> regress all 12 future steps from the last hidden state.
class GraphGru : public train::ForecastingModel {
 public:
  GraphGru(int64_t num_nodes, int64_t hidden, int64_t horizon,
           const Tensor& adjacency, Rng& rng)
      : ForecastingModel("graph_gru"),
        num_nodes_(num_nodes),
        horizon_(horizon),
        input_proj_(data::kInputFeatures, hidden, rng),
        spatial_(hidden, hidden, rng),
        gru_(hidden, hidden, rng),
        head_(hidden, horizon, rng) {
    RegisterChild(&input_proj_);
    RegisterChild(&spatial_);
    RegisterChild(&gru_);
    RegisterChild(&head_);
    NoGradGuard no_grad;
    transition_ = graph::ForwardTransition(adjacency);
  }

  Tensor Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size;
    Tensor x = input_proj_.Forward(batch.x);  // [B, T, N, h]
    x = Relu(spatial_.Forward(MatMul(transition_, x)));
    Tensor h = Tensor::Zeros({b, num_nodes_, gru_.hidden_size()});
    for (int64_t t = 0; t < batch.input_len; ++t) {
      h = gru_.Forward(Reshape(Slice(x, 1, t, t + 1),
                               {b, num_nodes_, gru_.hidden_size()}),
                       h);
    }
    Tensor out = head_.Forward(h);           // [B, N, Tf]
    out = Permute(out, {0, 2, 1});           // [B, Tf, N]
    return Reshape(out, {b, horizon_, num_nodes_, 1});
  }

  int64_t horizon() const override { return horizon_; }

 private:
  int64_t num_nodes_;
  int64_t horizon_;
  Tensor transition_;
  nn::Linear input_proj_;
  nn::Linear spatial_;
  nn::GruCell gru_;
  nn::Linear head_;
};

std::vector<int64_t> EveryNth(const std::vector<int64_t>& v, int64_t n) {
  std::vector<int64_t> out;
  for (size_t i = 0; i < v.size(); i += static_cast<size_t>(n)) {
    out.push_back(v[i]);
  }
  return out;
}

}  // namespace

int main() {
  data::SyntheticTrafficOptions options = data::MetrLaOptions(0.05f);
  options.network.num_nodes = 12;
  const data::SyntheticTraffic traffic = data::GenerateSyntheticTraffic(options);
  const data::TimeSeriesDataset& dataset = traffic.dataset;

  data::StandardScaler scaler;
  scaler.Fit(dataset.values, dataset.num_steps() * 7 / 10, true);
  const auto splits =
      data::MakeChronologicalSplits(dataset.num_steps(), 12, 12, 0.7f, 0.1f);
  data::WindowDataLoader train_loader(&dataset, &scaler,
                                      EveryNth(splits.train, 16), 12, 12, 16);
  data::WindowDataLoader val_loader(&dataset, &scaler,
                                    EveryNth(splits.val, 8), 12, 12, 16);
  data::WindowDataLoader test_loader(&dataset, &scaler,
                                     EveryNth(splits.test, 8), 12, 12, 16);

  Rng rng(3);
  GraphGru model(dataset.num_nodes(), 16, 12, dataset.network.adjacency, rng);
  std::printf("custom GraphGru model: %lld parameters\n",
              static_cast<long long>(model.ParameterCount()));

  train::TrainerOptions trainer_options;
  trainer_options.epochs = 5;
  trainer_options.verbose = true;
  train::Trainer trainer(&model, &scaler, trainer_options);
  trainer.Fit(&train_loader, &val_loader);

  for (const auto& h : train::EvaluateHorizons(&model, &scaler, &test_loader)) {
    std::printf("horizon %2lld: MAE %.3f  RMSE %.3f  MAPE %.2f%%\n",
                static_cast<long long>(h.horizon), h.metrics.mae,
                h.metrics.rmse, h.metrics.mape * 100.0);
  }

  // Bonus: the autograd engine is general-purpose — verify a gradient by
  // hand right here.
  Tensor w = Tensor::Full({1}, 3.0f).SetRequiresGrad(true);
  Tensor loss = Sum(Mul(Mul(w, w), w));  // w^3 -> d/dw = 3 w^2 = 27
  loss.Backward();
  std::printf("\nautograd sanity: d(w^3)/dw at w=3 is %.1f (expected 27)\n",
              w.Grad().At(0));
  return 0;
}
