// Serving a trained model with the inference engine: an InferenceSession
// wrapping D2STGNN behind a micro-batching BatchingServer, driven by an
// open-loop load generator — producers submit on a fixed schedule whether
// or not earlier requests have finished, like real traffic does — then a
// latency/throughput report (p50/p95/p99 via metrics::SummarizeLatencies).
//
// The generator runs once per serving mode, each against a fresh session
// around identically-initialized weights:
//   eager — every forward runs the normal op dispatch path
//   plan  — warmed-up batch shapes replay captured execution plans
//           (DESIGN.md §10); the report adds the plan-cache counters
//
//   ./build/examples/serve_forecasts [rate_rps] [seconds] [producers]
//       [--mode=eager|plan|both] [--qps=N] [--deadline-ms=N]
//       [--reload-dir=DIR] [--reload-poll-ms=N]
//       [--fleet] [--models=id:slo,...]
//
// Defaults: 200 req/s for 2 seconds from 2 producers, --mode=both.
//
// Overload-resilience knobs (DESIGN.md §13):
//   --qps=N         named override of the positional rate — push it past
//                   what one core serves and watch the admission controller
//                   shed with typed, retryable rejections
//   --deadline-ms=N per-request deadline; requests that would go stale in
//                   the queue are dropped before they waste a batch slot
//   --reload-dir=D  watch D for checkpoints and hot-swap them in under
//                   live traffic; the demo drops a differently-seeded twin
//                   checkpoint into D halfway through each run, so the
//                   post-swap forecasts visibly change mid-load
//   --reload-poll-ms=N  checkpoint watcher poll period (default 50)
//
// Fleet mode (DESIGN.md §14) — one process, many city models:
//   --fleet         serve every tenant in --models from a single
//                   FleetServer: per-model weights, plan caches, and SLO
//                   classes behind one shared queue, with weighted-fair
//                   arbitration once the queue is contended. Ends with a
//                   per-model report table (per-reason rejects, tier,
//                   session swaps). With --reload-dir, a twin checkpoint
//                   is hot-reloaded into the *first* tenant mid-run — the
//                   other lanes must not swap.
//   --models=...    comma-separated "id" or "id:slo" tenants (SLO classes:
//                   gold, silver, bronze); default
//                   "metr-la:gold,pems-bay:silver,city-syn:bronze"
//
//   ./build/examples/serve_forecasts --fleet
//       --models=metr-la:gold,pems-bay:silver,city-syn:bronze
//       --qps=600 --reload-dir=/tmp/fleet-demo

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "core/d2stgnn.h"
#include "data/sliding_window.h"
#include "data/synthetic_traffic.h"
#include "infer/batching_server.h"
#include "infer/fleet/fleet.h"
#include "infer/fleet/fleet_server.h"
#include "infer/hot_reload.h"
#include "infer/session.h"
#include "metrics/metrics.h"
#include "tensor/kernels/registry.h"
#include "train/checkpoint.h"

using namespace d2stgnn;

namespace {

constexpr int64_t kNodes = 20;
constexpr int64_t kInputLen = 12;

core::D2StgnnConfig ModelConfig(const data::SyntheticTraffic& traffic) {
  core::D2StgnnConfig config;
  config.num_nodes = kNodes;
  config.input_len = kInputLen;
  config.output_len = 12;
  config.hidden_dim = 16;
  config.embed_dim = 8;
  config.steps_per_day = traffic.dataset.steps_per_day;
  return config;
}

std::unique_ptr<core::D2Stgnn> BuildModel(
    const data::SyntheticTraffic& traffic, uint64_t seed) {
  Rng rng(seed);
  return std::make_unique<core::D2Stgnn>(
      ModelConfig(traffic), traffic.dataset.network.adjacency, rng);
}

infer::SessionOptions MakeSessionOptions(
    const data::SyntheticTraffic& traffic, bool use_plans) {
  infer::SessionOptions session_options;
  session_options.num_nodes = kNodes;
  session_options.input_len = kInputLen;
  session_options.steps_per_day = traffic.dataset.steps_per_day;
  session_options.use_plans = use_plans;
  return session_options;
}

// Overload-resilience knobs threaded from main into each load run.
struct LoadConfig {
  int64_t deadline_us = 0;   // 0 = no deadline
  std::string reload_dir;    // empty = no hot-reload watcher
  int64_t reload_poll_ms = 50;
  bool use_plans = false;
  const data::SyntheticTraffic* traffic = nullptr;
  const data::StandardScaler* scaler = nullptr;
};

// Drives the open-loop load against one session and prints its report.
// Returns false on setup failure.
bool RunLoad(infer::InferenceSession* session, const char* label,
             const std::vector<infer::ForecastRequest>& ring, double rate_rps,
             double seconds, int producers, const LoadConfig& load) {
  infer::BatchingOptions batching;
  batching.max_batch_size = 8;
  batching.max_wait_us = 1000;
  batching.max_queue_depth = 1024;
  infer::BatchingServer server(session, batching);

  // Hot-reload: watch --reload-dir and swap staged checkpoints in while
  // the producers keep submitting. The demo seeds the directory itself: a
  // twin model (different weights, same architecture) is checkpointed
  // halfway through the run, so the swap happens under live traffic.
  std::unique_ptr<infer::CheckpointReloader> reloader;
  std::thread checkpoint_dropper;
  std::string watch_dir;
  if (!load.reload_dir.empty()) {
    // Per-mode subdirectory so --mode=both does not replay the eager run's
    // checkpoint into the plan run at t=0.
    watch_dir = load.reload_dir + "/" + label;
    std::filesystem::create_directories(watch_dir);
    infer::HotReloadOptions reload_options;
    reload_options.directory = watch_dir;
    reload_options.poll_interval_ms = load.reload_poll_ms;
    const data::SyntheticTraffic& traffic = *load.traffic;
    reloader = std::make_unique<infer::CheckpointReloader>(
        &server, [&traffic] { return BuildModel(traffic, 3); }, *load.scaler,
        MakeSessionOptions(traffic, load.use_plans), reload_options);
    reloader->Start();
    checkpoint_dropper = std::thread([&traffic, &watch_dir, seconds] {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(seconds / 2.0));
      const std::unique_ptr<core::D2Stgnn> twin = BuildModel(traffic, 7);
      const std::string path = train::CheckpointPathForStep(watch_dir, 1);
      if (!train::SaveCheckpoint(*twin, path)) {
        std::fprintf(stderr, "checkpoint drop failed: %s\n", path.c_str());
      }
    });
  }

  std::printf("\n[%s] open-loop load: %.0f req/s for %.1f s from %d "
              "producer%s\n",
              label, rate_rps, seconds, producers, producers == 1 ? "" : "s");

  using clock = std::chrono::steady_clock;
  struct InFlight {
    clock::time_point submitted;
    std::future<infer::Forecast> future;
  };
  // Each producer hands its in-flight requests to a harvester thread that
  // waits on the futures in submission order, so latency is stamped when a
  // forecast arrives, not when a post-run sweep gets around to it.
  struct ProducerLane {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<InFlight> pending;
    bool done = false;
    std::vector<double> latencies_ms;
    int64_t shed = 0;
    int64_t expired = 0;
  };
  std::vector<ProducerLane> lanes(static_cast<size_t>(producers));
  const auto interval = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(static_cast<double>(producers) /
                                    rate_rps));
  const auto bench_start = clock::now();
  const auto bench_end =
      bench_start + std::chrono::duration_cast<clock::duration>(
                        std::chrono::duration<double>(seconds));

  std::vector<std::thread> workers;
  for (int p = 0; p < producers; ++p) {
    ProducerLane& lane = lanes[static_cast<size_t>(p)];
    workers.emplace_back([&, p] {
      auto next = bench_start + interval * p / producers;
      size_t i = static_cast<size_t>(p);
      while (next < bench_end) {
        std::this_thread::sleep_until(next);
        infer::ForecastRequest request = ring[i % ring.size()];
        request.deadline_us = load.deadline_us;
        InFlight entry{clock::now(), server.Submit(std::move(request))};
        {
          std::lock_guard<std::mutex> hold(lane.mu);
          lane.pending.push_back(std::move(entry));
        }
        lane.cv.notify_one();
        i += static_cast<size_t>(producers);
        next += interval;  // open loop: the schedule never waits on results
      }
      {
        std::lock_guard<std::mutex> hold(lane.mu);
        lane.done = true;
      }
      lane.cv.notify_one();
    });
    workers.emplace_back([&lane] {
      for (;;) {
        std::unique_lock<std::mutex> hold(lane.mu);
        lane.cv.wait(hold,
                     [&lane] { return lane.done || !lane.pending.empty(); });
        if (lane.pending.empty()) break;
        InFlight entry = std::move(lane.pending.front());
        lane.pending.pop_front();
        hold.unlock();
        const infer::Forecast forecast = entry.future.get();
        if (forecast.ok) {
          lane.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(clock::now() -
                                                        entry.submitted)
                  .count());
        } else if (forecast.reason ==
                   infer::RejectReason::kDeadlineExceeded) {
          ++lane.expired;  // went stale waiting in the queue
        } else {
          ++lane.shed;  // typed admission reject under overload
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - bench_start).count();
  if (checkpoint_dropper.joinable()) checkpoint_dropper.join();
  reloader.reset();  // stop the watcher before the server drains
  server.Shutdown();

  std::vector<double> latencies_ms;
  int64_t shed = 0;
  int64_t expired = 0;
  for (const ProducerLane& lane : lanes) {
    latencies_ms.insert(latencies_ms.end(), lane.latencies_ms.begin(),
                        lane.latencies_ms.end());
    shed += lane.shed;
    expired += lane.expired;
  }

  const metrics::LatencyStats stats =
      metrics::SummarizeLatencies(latencies_ms);
  const infer::BatchingServerStats server_stats = server.stats();
  std::printf("[%s] served %lld requests in %.2f s (%.1f req/s), "
              "%lld shed, %lld expired\n",
              label, static_cast<long long>(stats.count), elapsed,
              static_cast<double>(stats.count) / elapsed,
              static_cast<long long>(shed), static_cast<long long>(expired));
  std::printf("[%s] latency: p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  "
              "max %.3f ms\n",
              label, stats.p50, stats.p95, stats.p99, stats.max);
  std::printf("[%s] batches: %lld (%lld full, %lld by timer), mean %.2f "
              "req/batch, peak queue %lld\n",
              label, static_cast<long long>(server_stats.batches),
              static_cast<long long>(server_stats.full_flushes),
              static_cast<long long>(server_stats.timeout_flushes),
              server_stats.batches > 0
                  ? static_cast<double>(server_stats.completed) /
                        static_cast<double>(server_stats.batches)
                  : 0.0,
              static_cast<long long>(server_stats.max_queue_depth_seen));
  if (server_stats.rejected + server_stats.expired_deadlines > 0) {
    std::printf("[%s] rejects: %lld queue-full, %lld rate-limited, "
                "%lld overloaded, %lld low-priority, %lld deadline-expired "
                "(tier %s)\n",
                label, static_cast<long long>(server_stats.rejected_queue_full),
                static_cast<long long>(server_stats.rejected_rate_limited),
                static_cast<long long>(server_stats.rejected_overloaded),
                static_cast<long long>(server_stats.rejected_low_priority),
                static_cast<long long>(server_stats.expired_deadlines),
                infer::OverloadTierName(server_stats.tier));
  }
  if (!watch_dir.empty()) {
    std::printf("[%s] hot-reload: %lld session swap%s from %s\n", label,
                static_cast<long long>(server_stats.session_swaps),
                server_stats.session_swaps == 1 ? "" : "s",
                watch_dir.c_str());
  }
  const infer::SessionStats session_stats = session->session_stats();
  if (session_stats.plans_built > 0) {
    std::printf("[%s] plans: %lld built, %lld replays (%lld padded), "
                "%lld eager fallbacks\n",
                label, static_cast<long long>(session_stats.plans_built),
                static_cast<long long>(session_stats.plan_replays),
                static_cast<long long>(session_stats.padded_replays),
                static_cast<long long>(session_stats.eager_forwards));
  }
  return true;
}

// A session over deterministically-seeded weights. A real deployment would
// InferenceSession::Load() a trained checkpoint instead of Wrap()-ing fresh
// weights; the serving path is identical.
std::unique_ptr<infer::InferenceSession> BuildSession(
    const data::SyntheticTraffic& traffic, const data::StandardScaler& scaler,
    bool use_plans) {
  return infer::InferenceSession::Wrap(BuildModel(traffic, 3), scaler,
                                       MakeSessionOptions(traffic, use_plans));
}

// One --models tenant: a routing id plus its serving tier.
struct FleetPreset {
  std::string id;
  infer::SloClass slo;
};

// Parses "id" or "id:slo" entries from a comma-separated --models value.
bool ParseFleetPresets(const std::string& models,
                       std::vector<FleetPreset>* out) {
  out->clear();
  size_t pos = 0;
  while (pos <= models.size()) {
    const size_t comma = std::min(models.find(',', pos), models.size());
    std::string entry = models.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim surrounding spaces so "a:gold, b:silver" parses.
    const size_t first = entry.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    entry = entry.substr(first, entry.find_last_not_of(" \t") - first + 1);
    FleetPreset preset;
    const size_t colon = entry.find(':');
    preset.id = colon == std::string::npos ? entry : entry.substr(0, colon);
    if (preset.id.empty()) {
      std::fprintf(stderr, "--models entry '%s' has an empty model id\n",
                   entry.c_str());
      return false;
    }
    if (colon != std::string::npos &&
        !infer::ResolveSloClass(entry.substr(colon + 1), &preset.slo)) {
      std::fprintf(stderr,
                   "--models entry '%s' names an unknown SLO class "
                   "(known: gold, silver, bronze)\n",
                   entry.c_str());
      return false;
    }
    for (const FleetPreset& other : *out) {
      if (other.id == preset.id) {
        std::fprintf(stderr, "--models lists '%s' twice\n", preset.id.c_str());
        return false;
      }
    }
    out->push_back(std::move(preset));
  }
  if (out->empty()) {
    std::fprintf(stderr, "--models lists no models\n");
    return false;
  }
  return true;
}

// Fleet mode: every tenant behind one FleetServer, open-loop producers per
// model, then a per-model report table. Returns false on setup failure.
bool RunFleetLoad(const std::vector<FleetPreset>& presets,
                  const std::vector<infer::ForecastRequest>& ring,
                  double rate_rps, double seconds, const LoadConfig& load) {
  const data::SyntheticTraffic& traffic = *load.traffic;
  infer::ModelFleet fleet;
  for (size_t i = 0; i < presets.size(); ++i) {
    // Distinct weights per tenant, spaced so the reload twin (seed + 1)
    // cannot collide with another tenant's seed.
    const uint64_t seed = 3 + 16 * (static_cast<uint64_t>(i) + 1);
    auto session = infer::InferenceSession::Wrap(
        BuildModel(traffic, seed), *load.scaler,
        MakeSessionOptions(traffic, /*use_plans=*/true));
    if (session == nullptr) return false;
    infer::FleetModelOptions model_options;
    model_options.model_id = presets[i].id;
    model_options.slo = presets[i].slo;
    model_options.max_batch_size = 8;
    model_options.max_wait_us = 1000;
    std::string error;
    if (!fleet.AddModel(std::shared_ptr<infer::InferenceSession>(
                            session.release()),
                        model_options, &error)) {
      std::fprintf(stderr, "fleet setup failed: %s\n", error.c_str());
      return false;
    }
  }
  infer::FleetOptions fleet_options;
  fleet_options.max_queue_depth = 1024;
  infer::FleetServer server(&fleet, fleet_options);

  // Hot reload in fleet mode: the watcher targets the *first* tenant's
  // lane; every other lane must ride out the swap untouched.
  const std::string reload_id = presets.front().id;
  std::thread checkpoint_dropper;
  std::string watch_dir;
  if (!load.reload_dir.empty()) {
    watch_dir = load.reload_dir + "/fleet-" + reload_id;
    std::filesystem::create_directories(watch_dir);
    infer::HotReloadOptions reload_options;
    reload_options.directory = watch_dir;
    reload_options.poll_interval_ms = load.reload_poll_ms;
    std::string error;
    if (!fleet.AttachReloader(reload_id, server.host(reload_id),
                              [&traffic] { return BuildModel(traffic, 3); },
                              *load.scaler,
                              MakeSessionOptions(traffic, /*use_plans=*/true),
                              reload_options, &error)) {
      std::fprintf(stderr, "fleet reloader failed: %s\n", error.c_str());
      return false;
    }
    fleet.StartReloaders();
    checkpoint_dropper = std::thread([&traffic, &watch_dir, seconds] {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(seconds / 2.0));
      const std::unique_ptr<core::D2Stgnn> twin = BuildModel(traffic, 7);
      const std::string path = train::CheckpointPathForStep(watch_dir, 1);
      if (!train::SaveCheckpoint(*twin, path)) {
        std::fprintf(stderr, "checkpoint drop failed: %s\n", path.c_str());
      }
    });
  }

  std::printf("\n[fleet] open-loop load: %.0f req/s split across %zu "
              "model%s for %.1f s\n",
              rate_rps, presets.size(), presets.size() == 1 ? "" : "s",
              seconds);

  using clock = std::chrono::steady_clock;
  struct TenantLane {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::pair<clock::time_point, std::future<infer::Forecast>>>
        pending;
    bool done = false;
    std::vector<double> latencies_ms;
  };
  std::vector<std::unique_ptr<TenantLane>> lanes;
  for (size_t i = 0; i < presets.size(); ++i) {
    lanes.push_back(std::make_unique<TenantLane>());
  }
  const double per_model_rps =
      rate_rps / static_cast<double>(presets.size());
  const auto interval = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(1.0 / per_model_rps));
  const auto bench_start = clock::now();
  const auto bench_end =
      bench_start + std::chrono::duration_cast<clock::duration>(
                        std::chrono::duration<double>(seconds));

  std::vector<std::thread> workers;
  for (size_t m = 0; m < presets.size(); ++m) {
    TenantLane& lane = *lanes[m];
    const std::string& id = presets[m].id;
    workers.emplace_back([&, m] {
      auto next = bench_start + interval * static_cast<int64_t>(m) /
                                    static_cast<int64_t>(presets.size());
      size_t i = m;
      while (next < bench_end) {
        std::this_thread::sleep_until(next);
        infer::ForecastRequest request = ring[i % ring.size()];
        request.deadline_us = load.deadline_us;
        auto future = server.Submit(id, std::move(request));
        {
          std::lock_guard<std::mutex> hold(lane.mu);
          lane.pending.emplace_back(clock::now(), std::move(future));
        }
        lane.cv.notify_one();
        i += presets.size();
        next += interval;  // open loop: never waits on results
      }
      {
        std::lock_guard<std::mutex> hold(lane.mu);
        lane.done = true;
      }
      lane.cv.notify_one();
    });
    workers.emplace_back([&lane] {
      for (;;) {
        std::unique_lock<std::mutex> hold(lane.mu);
        lane.cv.wait(hold,
                     [&lane] { return lane.done || !lane.pending.empty(); });
        if (lane.pending.empty()) break;
        auto entry = std::move(lane.pending.front());
        lane.pending.pop_front();
        hold.unlock();
        const infer::Forecast forecast = entry.second.get();
        if (forecast.ok) {
          lane.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(clock::now() -
                                                        entry.first)
                  .count());
        }
        // Rejects are tallied from the server's typed per-model counters.
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - bench_start).count();
  if (checkpoint_dropper.joinable()) checkpoint_dropper.join();
  fleet.StopReloaders();
  server.Shutdown();

  const infer::FleetStats stats = server.stats();
  std::printf("[fleet] %lld served / %lld offered in %.2f s (tier %s, "
              "%lld unknown-model rejects)\n",
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.submitted), elapsed,
              infer::OverloadTierName(stats.tier),
              static_cast<long long>(stats.rejected_unknown_model));
  std::printf("  %-12s %-8s %9s %9s %9s %9s %28s %6s\n", "model", "slo",
              "served", "p50 ms", "p99 ms", "shed",
              "rejects (q/rate/over/low/quota)", "swaps");
  for (size_t m = 0; m < presets.size(); ++m) {
    const infer::FleetModelStats& ms = stats.models.at(presets[m].id);
    const metrics::LatencyStats lat =
        metrics::SummarizeLatencies(lanes[m]->latencies_ms);
    char rejects[64];
    std::snprintf(rejects, sizeof(rejects),
                  "%lld/%lld/%lld/%lld/%lld",
                  static_cast<long long>(ms.rejected_queue_full),
                  static_cast<long long>(ms.rejected_rate_limited),
                  static_cast<long long>(ms.rejected_overloaded),
                  static_cast<long long>(ms.rejected_low_priority),
                  static_cast<long long>(ms.rejected_quota));
    std::printf("  %-12s %-8s %9lld %9.3f %9.3f %9lld %28s %6lld\n",
                presets[m].id.c_str(), presets[m].slo.name.c_str(),
                static_cast<long long>(ms.completed), lat.p50, lat.p99,
                static_cast<long long>(ms.rejected + ms.expired_deadlines),
                rejects, static_cast<long long>(ms.session_swaps));
  }
  if (!watch_dir.empty()) {
    std::printf("[fleet] hot-reload: %lld swap%s on '%s' from %s\n",
                static_cast<long long>(stats.session_swaps),
                stats.session_swaps == 1 ? "" : "s", reload_id.c_str(),
                watch_dir.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double rate_rps = 200.0;
  double seconds = 2.0;
  int64_t producer_count = 2;
  std::string mode = "both";
  double qps = 0.0;
  double deadline_ms = 0.0;
  std::string reload_dir;
  int64_t reload_poll_ms = 50;
  bool fleet_mode = false;
  std::string models = "metr-la:gold,pems-bay:silver,city-syn:bronze";
  std::string backend;
  FlagParser flags("serve_forecasts",
                   "open-loop serving demo against the BatchingServer");
  flags.AddPositionalDouble("rate_rps", &rate_rps,
                            "aggregate request rate (default 200)");
  flags.AddPositionalDouble("seconds", &seconds,
                            "run duration per mode (default 2)");
  flags.AddPositionalInt("producers", &producer_count,
                         "concurrent request producers (default 2)");
  flags.AddChoice("mode", &mode, {"eager", "plan", "both"},
                  "which dispatch mode(s) to serve");
  flags.AddDouble("qps", &qps,
                  "named override of rate_rps (0 = use the positional)");
  flags.AddDouble("deadline-ms", &deadline_ms,
                  "per-request deadline in ms (0 = none); stale requests "
                  "are dropped before dispatch");
  flags.AddString("reload-dir", &reload_dir,
                  "watch this directory for checkpoints and hot-swap them "
                  "in under load (a twin checkpoint is dropped mid-run)");
  flags.AddInt("reload-poll-ms", &reload_poll_ms,
               "checkpoint watcher poll period in ms (default 50)");
  flags.AddBool("fleet", &fleet_mode,
                "serve every --models tenant from one FleetServer "
                "(per-model SLO classes, shared-capacity arbitration)");
  flags.AddString("models", &models,
                  "fleet tenants as comma-separated id[:slo] entries "
                  "(SLO classes: gold, silver, bronze)");
  flags.AddString("backend", &backend,
                  "kernel backend to serve under (scalar, avx2; default: "
                  "runtime detection, D2STGNN_FORCE_BACKEND honored)");
  if (!flags.Parse(argc, argv)) {
    if (flags.help_requested()) {
      std::fputs(flags.Usage().c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr, "%s: %s\n%s", argv[0], flags.error().c_str(),
                 flags.Usage().c_str());
    return 1;
  }
  const int producers = static_cast<int>(producer_count);
  const bool run_eager = mode == "eager" || mode == "both";
  const bool run_plan = mode == "plan" || mode == "both";
  if (qps > 0.0) rate_rps = qps;
  if (rate_rps <= 0.0 || seconds <= 0.0 || producers <= 0) {
    std::fprintf(stderr, "%s: rate_rps, seconds, and producers must be > 0\n",
                 argv[0]);
    return 1;
  }
  if (deadline_ms < 0.0) {
    std::fprintf(stderr, "%s: --deadline-ms must be >= 0\n", argv[0]);
    return 1;
  }
  if (reload_poll_ms <= 0) {
    std::fprintf(stderr, "%s: --reload-poll-ms must be > 0\n", argv[0]);
    return 1;
  }
  if (!backend.empty()) {
    std::string error;
    if (!kernels::SetActiveBackend(backend, &error)) {
      std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
      return 1;
    }
  }
  std::printf("kernel backend: %s (detected: %s)\n",
              kernels::ActiveBackend().name, kernels::DetectedBackendName());

  // A road network to serve forecasts for.
  data::SyntheticTrafficOptions traffic_options;
  traffic_options.network.num_nodes = kNodes;
  traffic_options.num_steps = 600;
  traffic_options.seed = 11;
  const data::SyntheticTraffic traffic =
      data::GenerateSyntheticTraffic(traffic_options);
  data::StandardScaler scaler;
  scaler.Fit(traffic.dataset.values, 400, true);

  // A ring of real sensor windows to request forecasts for.
  std::vector<infer::ForecastRequest> ring;
  const std::vector<float>& values = traffic.dataset.values.Data();
  for (int64_t start = 0; start < 64; ++start) {
    infer::ForecastRequest request;
    request.window.assign(values.data() + start * kNodes,
                          values.data() + (start + kInputLen) * kNodes);
    request.time_of_day = traffic.dataset.TimeOfDay(start);
    request.day_of_week = traffic.dataset.DayOfWeek(start);
    ring.push_back(std::move(request));
  }

  LoadConfig load;
  load.deadline_us = static_cast<int64_t>(deadline_ms * 1000.0);
  load.reload_dir = reload_dir;
  load.reload_poll_ms = reload_poll_ms;
  load.traffic = &traffic;
  load.scaler = &scaler;

  if (fleet_mode) {
    std::vector<FleetPreset> presets;
    if (!ParseFleetPresets(models, &presets)) return 1;
    return RunFleetLoad(presets, ring, rate_rps, seconds, load) ? 0 : 1;
  }

  std::unique_ptr<infer::InferenceSession> last_session;
  if (run_eager) {
    auto session = BuildSession(traffic, scaler, /*use_plans=*/false);
    if (session == nullptr) return 1;
    load.use_plans = false;
    if (!RunLoad(session.get(), "eager", ring, rate_rps, seconds, producers,
                 load)) {
      return 1;
    }
    last_session = std::move(session);
  }
  if (run_plan) {
    auto session = BuildSession(traffic, scaler, /*use_plans=*/true);
    if (session == nullptr) return 1;
    // The BatchingServer warms up sizes 1 and max_batch_size on
    // construction, so the load runs against captured plans from the start.
    load.use_plans = true;
    if (!RunLoad(session.get(), "plan", ring, rate_rps, seconds, producers,
                 load)) {
      return 1;
    }
    last_session = std::move(session);
  }

  // One forecast, end to end, for show: the model's 12-step speed forecast
  // for sensor 0.
  const infer::Forecast sample = last_session->PredictOne(ring[0]);
  if (sample.ok) {
    std::printf("\nsensor 0 forecast (mph):");
    for (int64_t t = 0; t < sample.horizon; ++t) {
      std::printf(" %.1f", sample.values[static_cast<size_t>(
                               t * sample.num_nodes)]);
    }
    std::printf("\n");
  }
  return 0;
}
