// Serving a trained model with the inference engine: an InferenceSession
// wrapping D2STGNN behind a micro-batching BatchingServer, driven by an
// open-loop load generator — producers submit on a fixed schedule whether
// or not earlier requests have finished, like real traffic does — then a
// latency/throughput report (p50/p95/p99 via metrics::SummarizeLatencies).
//
// The generator runs once per serving mode, each against a fresh session
// around identically-initialized weights:
//   eager — every forward runs the normal op dispatch path
//   plan  — warmed-up batch shapes replay captured execution plans
//           (DESIGN.md §10); the report adds the plan-cache counters
//
//   ./build/examples/serve_forecasts [rate_rps] [seconds] [producers]
//       [--mode=eager|plan|both]
//
// Defaults: 200 req/s for 2 seconds from 2 producers, --mode=both.

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "core/d2stgnn.h"
#include "data/sliding_window.h"
#include "data/synthetic_traffic.h"
#include "infer/batching_server.h"
#include "infer/session.h"
#include "metrics/metrics.h"

using namespace d2stgnn;

namespace {

constexpr int64_t kNodes = 20;
constexpr int64_t kInputLen = 12;

// Drives the open-loop load against one session and prints its report.
// Returns false on setup failure.
bool RunLoad(infer::InferenceSession* session, const char* label,
             const std::vector<infer::ForecastRequest>& ring, double rate_rps,
             double seconds, int producers) {
  infer::BatchingOptions batching;
  batching.max_batch_size = 8;
  batching.max_wait_us = 1000;
  batching.max_queue_depth = 1024;
  infer::BatchingServer server(session, batching);

  std::printf("\n[%s] open-loop load: %.0f req/s for %.1f s from %d "
              "producer%s\n",
              label, rate_rps, seconds, producers, producers == 1 ? "" : "s");

  using clock = std::chrono::steady_clock;
  struct InFlight {
    clock::time_point submitted;
    std::future<infer::Forecast> future;
  };
  // Each producer hands its in-flight requests to a harvester thread that
  // waits on the futures in submission order, so latency is stamped when a
  // forecast arrives, not when a post-run sweep gets around to it.
  struct ProducerLane {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<InFlight> pending;
    bool done = false;
    std::vector<double> latencies_ms;
    int64_t shed = 0;
  };
  std::vector<ProducerLane> lanes(static_cast<size_t>(producers));
  const auto interval = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(static_cast<double>(producers) /
                                    rate_rps));
  const auto bench_start = clock::now();
  const auto bench_end =
      bench_start + std::chrono::duration_cast<clock::duration>(
                        std::chrono::duration<double>(seconds));

  std::vector<std::thread> workers;
  for (int p = 0; p < producers; ++p) {
    ProducerLane& lane = lanes[static_cast<size_t>(p)];
    workers.emplace_back([&, p] {
      auto next = bench_start + interval * p / producers;
      size_t i = static_cast<size_t>(p);
      while (next < bench_end) {
        std::this_thread::sleep_until(next);
        InFlight entry{clock::now(), server.Submit(ring[i % ring.size()])};
        {
          std::lock_guard<std::mutex> hold(lane.mu);
          lane.pending.push_back(std::move(entry));
        }
        lane.cv.notify_one();
        i += static_cast<size_t>(producers);
        next += interval;  // open loop: the schedule never waits on results
      }
      {
        std::lock_guard<std::mutex> hold(lane.mu);
        lane.done = true;
      }
      lane.cv.notify_one();
    });
    workers.emplace_back([&lane] {
      for (;;) {
        std::unique_lock<std::mutex> hold(lane.mu);
        lane.cv.wait(hold,
                     [&lane] { return lane.done || !lane.pending.empty(); });
        if (lane.pending.empty()) break;
        InFlight entry = std::move(lane.pending.front());
        lane.pending.pop_front();
        hold.unlock();
        const infer::Forecast forecast = entry.future.get();
        if (forecast.ok) {
          lane.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(clock::now() -
                                                        entry.submitted)
                  .count());
        } else {
          ++lane.shed;  // "queue full" under overload
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - bench_start).count();
  server.Shutdown();

  std::vector<double> latencies_ms;
  int64_t shed = 0;
  for (const ProducerLane& lane : lanes) {
    latencies_ms.insert(latencies_ms.end(), lane.latencies_ms.begin(),
                        lane.latencies_ms.end());
    shed += lane.shed;
  }

  const metrics::LatencyStats stats =
      metrics::SummarizeLatencies(latencies_ms);
  const infer::BatchingServerStats server_stats = server.stats();
  std::printf("[%s] served %lld requests in %.2f s (%.1f req/s), %lld shed\n",
              label, static_cast<long long>(stats.count), elapsed,
              static_cast<double>(stats.count) / elapsed,
              static_cast<long long>(shed));
  std::printf("[%s] latency: p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  "
              "max %.3f ms\n",
              label, stats.p50, stats.p95, stats.p99, stats.max);
  std::printf("[%s] batches: %lld (%lld full, %lld by timer), mean %.2f "
              "req/batch, peak queue %lld\n",
              label, static_cast<long long>(server_stats.batches),
              static_cast<long long>(server_stats.full_flushes),
              static_cast<long long>(server_stats.timeout_flushes),
              server_stats.batches > 0
                  ? static_cast<double>(server_stats.completed) /
                        static_cast<double>(server_stats.batches)
                  : 0.0,
              static_cast<long long>(server_stats.max_queue_depth_seen));
  const infer::SessionStats session_stats = session->session_stats();
  if (session_stats.plans_built > 0) {
    std::printf("[%s] plans: %lld built, %lld replays (%lld padded), "
                "%lld eager fallbacks\n",
                label, static_cast<long long>(session_stats.plans_built),
                static_cast<long long>(session_stats.plan_replays),
                static_cast<long long>(session_stats.padded_replays),
                static_cast<long long>(session_stats.eager_forwards));
  }
  return true;
}

// A session over deterministically-seeded weights. A real deployment would
// InferenceSession::Load() a trained checkpoint instead of Wrap()-ing fresh
// weights; the serving path is identical.
std::unique_ptr<infer::InferenceSession> BuildSession(
    const data::SyntheticTraffic& traffic, const data::StandardScaler& scaler,
    bool use_plans) {
  core::D2StgnnConfig config;
  config.num_nodes = kNodes;
  config.input_len = kInputLen;
  config.output_len = 12;
  config.hidden_dim = 16;
  config.embed_dim = 8;
  config.steps_per_day = traffic.dataset.steps_per_day;
  Rng rng(3);
  auto model = std::make_unique<core::D2Stgnn>(
      config, traffic.dataset.network.adjacency, rng);

  infer::SessionOptions session_options;
  session_options.num_nodes = kNodes;
  session_options.input_len = kInputLen;
  session_options.steps_per_day = traffic.dataset.steps_per_day;
  session_options.use_plans = use_plans;
  return infer::InferenceSession::Wrap(std::move(model), scaler,
                                       session_options);
}

}  // namespace

int main(int argc, char** argv) {
  double rate_rps = 200.0;
  double seconds = 2.0;
  int64_t producer_count = 2;
  std::string mode = "both";
  FlagParser flags("serve_forecasts",
                   "open-loop serving demo against the BatchingServer");
  flags.AddPositionalDouble("rate_rps", &rate_rps,
                            "aggregate request rate (default 200)");
  flags.AddPositionalDouble("seconds", &seconds,
                            "run duration per mode (default 2)");
  flags.AddPositionalInt("producers", &producer_count,
                         "concurrent request producers (default 2)");
  flags.AddChoice("mode", &mode, {"eager", "plan", "both"},
                  "which dispatch mode(s) to serve");
  if (!flags.Parse(argc, argv)) {
    if (flags.help_requested()) {
      std::fputs(flags.Usage().c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr, "%s: %s\n%s", argv[0], flags.error().c_str(),
                 flags.Usage().c_str());
    return 1;
  }
  const int producers = static_cast<int>(producer_count);
  const bool run_eager = mode == "eager" || mode == "both";
  const bool run_plan = mode == "plan" || mode == "both";
  if (rate_rps <= 0.0 || seconds <= 0.0 || producers <= 0) {
    std::fprintf(stderr, "%s: rate_rps, seconds, and producers must be > 0\n",
                 argv[0]);
    return 1;
  }

  // A road network to serve forecasts for.
  data::SyntheticTrafficOptions traffic_options;
  traffic_options.network.num_nodes = kNodes;
  traffic_options.num_steps = 600;
  traffic_options.seed = 11;
  const data::SyntheticTraffic traffic =
      data::GenerateSyntheticTraffic(traffic_options);
  data::StandardScaler scaler;
  scaler.Fit(traffic.dataset.values, 400, true);

  // A ring of real sensor windows to request forecasts for.
  std::vector<infer::ForecastRequest> ring;
  const std::vector<float>& values = traffic.dataset.values.Data();
  for (int64_t start = 0; start < 64; ++start) {
    infer::ForecastRequest request;
    request.window.assign(values.data() + start * kNodes,
                          values.data() + (start + kInputLen) * kNodes);
    request.time_of_day = traffic.dataset.TimeOfDay(start);
    request.day_of_week = traffic.dataset.DayOfWeek(start);
    ring.push_back(std::move(request));
  }

  std::unique_ptr<infer::InferenceSession> last_session;
  if (run_eager) {
    auto session = BuildSession(traffic, scaler, /*use_plans=*/false);
    if (session == nullptr) return 1;
    if (!RunLoad(session.get(), "eager", ring, rate_rps, seconds, producers)) {
      return 1;
    }
    last_session = std::move(session);
  }
  if (run_plan) {
    auto session = BuildSession(traffic, scaler, /*use_plans=*/true);
    if (session == nullptr) return 1;
    // The BatchingServer warms up sizes 1 and max_batch_size on
    // construction, so the load runs against captured plans from the start.
    if (!RunLoad(session.get(), "plan", ring, rate_rps, seconds, producers)) {
      return 1;
    }
    last_session = std::move(session);
  }

  // One forecast, end to end, for show: the model's 12-step speed forecast
  // for sensor 0.
  const infer::Forecast sample = last_session->PredictOne(ring[0]);
  if (sample.ok) {
    std::printf("\nsensor 0 forecast (mph):");
    for (int64_t t = 0; t < sample.horizon; ++t) {
      std::printf(" %.1f", sample.values[static_cast<size_t>(
                               t * sample.num_nodes)]);
    }
    std::printf("\n");
  }
  return 0;
}
