// Persistence workflow: export a synthetic dataset to the CSV format the
// public METR-LA/PEMS archives use, load it back (rebuilding the adjacency
// with the thresholded Gaussian kernel), train D2STGNN briefly, checkpoint
// the weights, and restore them into a fresh model — the deploy/resume path
// a production user needs.
//
//   ./build/examples/export_import

#include <cstdio>

#include "core/d2stgnn.h"
#include "data/csv_loader.h"
#include "data/presets.h"
#include "data/sliding_window.h"
#include "data/synthetic_traffic.h"
#include "train/checkpoint.h"
#include "train/evaluator.h"
#include "train/trainer.h"

namespace {

using namespace d2stgnn;

std::vector<int64_t> EveryNth(const std::vector<int64_t>& v, int64_t n) {
  std::vector<int64_t> out;
  for (size_t i = 0; i < v.size(); i += static_cast<size_t>(n)) {
    out.push_back(v[i]);
  }
  return out;
}

}  // namespace

int main() {
  // 1. Export: write a synthetic dataset in the two-file CSV convention.
  data::SyntheticTrafficOptions options = data::MetrLaOptions(0.05f);
  options.network.num_nodes = 12;
  const data::SyntheticTraffic traffic = data::GenerateSyntheticTraffic(options);
  const std::string readings_csv = "export_readings.csv";
  const std::string distances_csv = "export_distances.csv";
  if (!data::SaveCsvDataset(traffic.dataset, readings_csv, distances_csv)) {
    return 1;
  }
  std::printf("exported %s (%lld x %lld) to %s / %s\n",
              traffic.dataset.name.c_str(),
              static_cast<long long>(traffic.dataset.num_steps()),
              static_cast<long long>(traffic.dataset.num_nodes()),
              readings_csv.c_str(), distances_csv.c_str());

  // 2. Import: exactly what you would do with the real METR-LA export.
  data::CsvDatasetOptions csv_options;
  csv_options.name = "METR-LA (from CSV)";
  data::TimeSeriesDataset dataset;
  if (!data::LoadCsvDataset(readings_csv, distances_csv, csv_options,
                            &dataset)) {
    return 1;
  }

  // 3. Standard pipeline on the loaded data.
  data::StandardScaler scaler;
  scaler.Fit(dataset.values, dataset.num_steps() * 7 / 10, true);
  const auto splits =
      data::MakeChronologicalSplits(dataset.num_steps(), 12, 12, 0.7f, 0.1f);
  data::WindowDataLoader train_loader(&dataset, &scaler,
                                      EveryNth(splits.train, 12), 12, 12, 16);
  data::WindowDataLoader test_loader(&dataset, &scaler,
                                     EveryNth(splits.test, 8), 12, 12, 16);

  core::D2StgnnConfig config;
  config.num_nodes = dataset.num_nodes();
  config.hidden_dim = 12;
  config.embed_dim = 6;
  config.steps_per_day = dataset.steps_per_day;
  Rng rng(21);
  core::D2Stgnn model(config, dataset.network.adjacency, rng);

  train::TrainerOptions trainer_options;
  trainer_options.epochs = 4;
  train::Trainer trainer(&model, &scaler, trainer_options);
  trainer.Fit(&train_loader, nullptr);
  const auto trained = trainer.Evaluate(&test_loader);
  std::printf("trained model: test MAE %.3f\n", trained.mae);

  // 4. Checkpoint and restore into a freshly constructed model.
  const std::string checkpoint = "d2stgnn.ckpt";
  if (!train::SaveCheckpoint(model, checkpoint)) return 1;
  Rng rng2(999);  // different init — must not matter after restore
  core::D2Stgnn restored(config, dataset.network.adjacency, rng2);
  if (!train::LoadCheckpoint(&restored, checkpoint)) return 1;
  train::Trainer probe(&restored, &scaler, trainer_options);
  const auto reloaded = probe.Evaluate(&test_loader);
  std::printf("restored model: test MAE %.3f (identical: %s)\n",
              reloaded.mae,
              reloaded.mae == trained.mae ? "yes" : "NO");
  return reloaded.mae == trained.mae ? 0 : 1;
}
