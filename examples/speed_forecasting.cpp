// Speed-forecasting scenario (the paper's METR-LA motivation): compare
// D2STGNN against a classical baseline (Historical Average) and a
// diffusion-only deep baseline (DCRNN) on a synthetic urban speed dataset
// with rush-hour congestion and sensor failures, then show how the model
// rides through a sensor-failure burst instead of predicting zeros.
//
//   ./build/examples/speed_forecasting [--checkpoint-dir DIR]
//       [--checkpoint-every N] [--resume PATH]
//
// The checkpoint flags apply to the D2STGNN run (each deep model would
// otherwise overwrite the other's files): with --checkpoint-dir its full
// training state is saved every N epochs, and --resume continues an
// interrupted D2STGNN run from a checkpoint.

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>

#include "baselines/historical_average.h"
#include "baselines/registry.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "data/presets.h"
#include "data/sliding_window.h"
#include "data/synthetic_traffic.h"
#include "train/evaluator.h"
#include "train/trainer.h"

namespace {

using namespace d2stgnn;

std::vector<int64_t> EveryNth(const std::vector<int64_t>& v, int64_t n) {
  std::vector<int64_t> out;
  for (size_t i = 0; i < v.size(); i += static_cast<size_t>(n)) {
    out.push_back(v[i]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Fault-tolerance flags, applied to the D2STGNN run below.
  std::string checkpoint_dir;
  std::string resume_from;
  int64_t checkpoint_every = 1;
  FlagParser flags("speed_forecasting",
                   "HA vs DCRNN vs D2STGNN on a failure-prone speed dataset");
  flags.AddString("checkpoint-dir", &checkpoint_dir,
                  "write D2STGNN full-state checkpoints into this directory");
  flags.AddInt("checkpoint-every", &checkpoint_every,
               "checkpoint every N epochs (default 1)");
  flags.AddString("resume", &resume_from,
                  "resume the D2STGNN run from this checkpoint");
  if (!flags.Parse(argc, argv)) {
    if (flags.help_requested()) {
      std::fputs(flags.Usage().c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr, "%s: %s\n%s", argv[0], flags.error().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (!checkpoint_dir.empty()) ::mkdir(checkpoint_dir.c_str(), 0755);

  // A mid-size city: 16 sensors, 16 days of 5-minute speeds, frequent
  // loop-detector failures (like METR-LA).
  data::SyntheticTrafficOptions options = data::MetrLaOptions(0.05f);
  options.network.num_nodes = 16;
  options.failure_prob = 1e-3f;
  const data::SyntheticTraffic traffic = data::GenerateSyntheticTraffic(options);
  const data::TimeSeriesDataset& dataset = traffic.dataset;

  const int64_t train_steps = dataset.num_steps() * 7 / 10;
  data::StandardScaler scaler;
  scaler.Fit(dataset.values, train_steps, /*mask_zeros=*/true);
  const auto splits =
      data::MakeChronologicalSplits(dataset.num_steps(), 12, 12, 0.7f, 0.1f);
  data::WindowDataLoader train_loader(&dataset, &scaler,
                                      EveryNth(splits.train, 8), 12, 12, 16);
  data::WindowDataLoader val_loader(&dataset, &scaler,
                                    EveryNth(splits.val, 8), 12, 12, 16);
  data::WindowDataLoader test_loader(&dataset, &scaler,
                                     EveryNth(splits.test, 8), 12, 12, 16);
  const std::vector<int64_t> test_starts = EveryNth(splits.test, 8);

  TablePrinter table(
      {"Model", "H3 MAE", "H6 MAE", "H12 MAE", "H12 RMSE", "H12 MAPE"});

  // Historical Average: weekly periodicity only.
  {
    baselines::HistoricalAverage ha;
    ha.Fit(dataset, train_steps);
    const Tensor pred = ha.Predict(dataset, test_starts, 12, 12);
    // Gather truths.
    std::vector<float> truth(pred.Data().size());
    const int64_t n = dataset.num_nodes();
    for (size_t w = 0; w < test_starts.size(); ++w) {
      for (int64_t h = 0; h < 12; ++h) {
        const float* src =
            dataset.values.Data().data() + (test_starts[w] + 12 + h) * n;
        std::copy(src, src + n,
                  truth.data() + (w * 12 + static_cast<size_t>(h)) * n);
      }
    }
    const auto horizons = train::EvaluatePredictionHorizons(
        pred, Tensor(pred.shape(), std::move(truth)));
    table.AddRow({"HA", TablePrinter::Num(horizons[0].metrics.mae),
                  TablePrinter::Num(horizons[1].metrics.mae),
                  TablePrinter::Num(horizons[2].metrics.mae),
                  TablePrinter::Num(horizons[2].metrics.rmse),
                  TablePrinter::Percent(horizons[2].metrics.mape)});
  }

  // Deep models under the shared trainer.
  for (const std::string& name : {std::string("DCRNN"), std::string("D2STGNN")}) {
    baselines::ModelConfig config;
    config.num_nodes = dataset.num_nodes();
    config.hidden_dim = 16;
    config.embed_dim = 8;
    config.steps_per_day = dataset.steps_per_day;
    Rng rng(7);
    auto model =
        baselines::MakeModel(name, config, dataset.network.adjacency, rng);
    train::TrainerOptions trainer_options;
    trainer_options.epochs = 8;
    if (name == "D2STGNN") {
      trainer_options.checkpoint_dir = checkpoint_dir;
      trainer_options.checkpoint_every = checkpoint_every;
      trainer_options.resume_from = resume_from;
      trainer_options.handle_signals = !checkpoint_dir.empty();
    }
    train::Trainer trainer(model.get(), &scaler, trainer_options);
    const train::FitResult fit = trainer.Fit(&train_loader, &val_loader);
    if (fit.stop_reason == train::StopReason::kResumeFailed) {
      std::fprintf(stderr, "cannot resume from %s\n", resume_from.c_str());
      return 1;
    }
    if (fit.stop_reason == train::StopReason::kInterrupted) {
      std::printf("interrupted; resume with --resume %s\n",
                  fit.interrupt_checkpoint.c_str());
      return 0;
    }
    const auto horizons =
        train::EvaluateHorizons(model.get(), &scaler, &test_loader);
    table.AddRow({name, TablePrinter::Num(horizons[0].metrics.mae),
                  TablePrinter::Num(horizons[1].metrics.mae),
                  TablePrinter::Num(horizons[2].metrics.mae),
                  TablePrinter::Num(horizons[2].metrics.rmse),
                  TablePrinter::Percent(horizons[2].metrics.mape)});

    if (name == "D2STGNN") {
      // Failure robustness: find a test window whose target contains a
      // sensor-failure zero and compare prediction vs. the zero reading.
      NoGradGuard no_grad;
      model->SetTraining(false);
      for (int64_t bi = 0; bi < test_loader.NumBatches(); ++bi) {
        const data::Batch batch = test_loader.GetBatch(bi);
        const Tensor pred =
            scaler.InverseTransform(model->Forward(batch));
        bool shown = false;
        for (int64_t s = 0; s < batch.batch_size && !shown; ++s) {
          for (int64_t node = 0; node < dataset.num_nodes() && !shown;
               ++node) {
            if (batch.y.At({s, 5, node, 0}) == 0.0f) {
              std::printf(
                  "\nfailure robustness: sensor %lld reads 0.0 (failed) at "
                  "horizon 6; D2STGNN predicts %.1f mph — it does not chase "
                  "the failure.\n",
                  static_cast<long long>(node), pred.At({s, 5, node, 0}));
              shown = true;
            }
          }
        }
        if (shown) break;
      }
    }
  }

  std::printf("\n=== speed forecasting on a METR-LA-like city ===\n%s",
              table.ToString().c_str());
  std::printf("(expected: HA worst, D2STGNN best — the paper's Table 3 "
              "ordering)\n");
  return 0;
}
