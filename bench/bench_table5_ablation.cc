// Reproduces Table 5: ablation study on METR-LA. Eleven variants:
//   D2STGNN, switch, w/o gate, w/o res, w/o decouple, w/o dg, w/o apt,
//   w/o gru, w/o msa, w/o ar, w/o cl
// Expected shape: `switch` ~= full model; every removal hurts, with
// `w/o decouple` hurting the most (Sec. 6.5).

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/d2stgnn.h"

namespace d2stgnn::bench {
namespace {

struct Variant {
  std::string name;
  std::function<void(core::D2StgnnConfig*)> tweak;  // null = full model
  bool disable_curriculum = false;
};

int Run() {
  const BenchEnv env = GetBenchEnv();
  std::printf("=== Table 5: ablation study on METR-LA (scale %.3f, %lld "
              "epochs) ===\n\n",
              env.scale, static_cast<long long>(env.epochs));

  const PreparedDataset prepared =
      PrepareDataset({"METR-LA", data::MetrLaOptions(env.scale), 0.7f, 0.1f},
                     env);

  std::vector<Variant> variants;
  variants.push_back({"D2STGNN", nullptr, false});
  variants.push_back(
      {"switch", [](core::D2StgnnConfig* c) { c->inherent_first = true; }});
  variants.push_back(
      {"w/o gate", [](core::D2StgnnConfig* c) { c->use_gate = false; }});
  variants.push_back(
      {"w/o res", [](core::D2StgnnConfig* c) { c->use_residual = false; }});
  variants.push_back({"w/o decouple", [](core::D2StgnnConfig* c) {
                        c->use_decouple = false;
                        c->use_gate = false;
                        c->use_residual = false;
                      }});
  variants.push_back({"w/o dg", [](core::D2StgnnConfig* c) {
                        c->use_dynamic_graph = false;
                      }});
  variants.push_back(
      {"w/o apt", [](core::D2StgnnConfig* c) { c->use_adaptive = false; }});
  variants.push_back(
      {"w/o gru", [](core::D2StgnnConfig* c) { c->use_gru = false; }});
  variants.push_back(
      {"w/o msa", [](core::D2StgnnConfig* c) { c->use_msa = false; }});
  variants.push_back({"w/o ar", [](core::D2StgnnConfig* c) {
                        c->autoregressive = false;
                      }});
  variants.push_back({"w/o cl", nullptr, /*disable_curriculum=*/true});

  TablePrinter table({"Variants", "H3 MAE", "H3 RMSE", "H3 MAPE", "H6 MAE",
                      "H6 RMSE", "H6 MAPE", "H12 MAE", "H12 RMSE",
                      "H12 MAPE"});
  double full_h12 = 0.0;
  double decouple_h12 = 0.0;
  for (const Variant& variant : variants) {
    core::D2StgnnConfig config;
    config.num_nodes = prepared.dataset().num_nodes();
    config.hidden_dim = env.hidden_dim;
    config.embed_dim = env.embed_dim;
    config.steps_per_day = prepared.dataset().steps_per_day;
    config.num_heads = env.hidden_dim >= 4 ? 4 : 1;
    if (variant.tweak) variant.tweak(&config);

    Rng rng(env.seed);
    core::D2Stgnn model(config, prepared.dataset().network.adjacency, rng);
    const TrainedModelResult result = TrainAndEvaluateModel(
        &model, prepared, env, [&](train::TrainerOptions* options) {
          if (variant.disable_curriculum) {
            options->curriculum_learning = false;
          }
        });

    std::vector<std::string> row = {variant.name};
    for (const auto& h : result.horizons) {
      for (const std::string& cell : MetricCells(h.metrics)) {
        row.push_back(cell);
      }
    }
    table.AddRow(row);
    if (variant.name == "D2STGNN") {
      full_h12 = result.horizons[2].metrics.mae;
      table.AddSeparator();
    }
    if (variant.name == "w/o decouple") {
      decouple_h12 = result.horizons[2].metrics.mae;
    }
    std::fflush(stdout);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("checks (H12 MAE): full %.2f vs w/o decouple %.2f — "
              "decoupling crucial: %s\n",
              full_h12, decouple_h12,
              full_h12 < decouple_h12 ? "yes" : "NO");
  return 0;
}

}  // namespace
}  // namespace d2stgnn::bench

int main() { return d2stgnn::bench::Run(); }
