// Reproduces Figure 7: parameter sensitivity of D2STGNN on METR-LA.
//   (a) spatial kernel size k_s and temporal kernel size k_t, 1..5 each
//       (one swept while the other is at its default)
//   (b) hidden dimension d in {4, 8, 16, 32, 64}
// Expected shape: MAE bottoms out at small kernels (k_s ~ 2, k_t ~ 3),
// verifying the spatial-temporal locality of diffusion; d has a sweet spot
// (too small underfits, too large overfits/slows).
//
// D2_FIG7_FAST=1 shrinks the sweeps for smoke runs.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "experiment/protocol.h"
#include "common/table_printer.h"
#include "core/d2stgnn.h"

namespace d2stgnn::bench {
using namespace d2stgnn::experiment;  // the shared measurement protocol
namespace {

double TrainWithConfig(const PreparedDataset& prepared, const BenchEnv& env,
                       int64_t k_s, int64_t k_t, int64_t hidden) {
  core::D2StgnnConfig config;
  config.num_nodes = prepared.dataset().num_nodes();
  config.hidden_dim = hidden;
  config.embed_dim = env.embed_dim;
  config.steps_per_day = prepared.dataset().steps_per_day;
  config.k_s = k_s;
  config.k_t = k_t;
  config.num_heads = hidden >= 4 ? 4 : 1;
  Rng rng(env.seed);
  core::D2Stgnn model(config, prepared.dataset().network.adjacency, rng);
  const TrainedModelResult result = TrainAndEvaluateModel(&model, prepared, env);
  // Figure 7 reports the average MAE over the whole horizon; use H6 as the
  // representative mid-horizon value plus the average across 3/6/12.
  double avg = 0.0;
  for (const auto& h : result.horizons) avg += h.metrics.mae;
  return avg / static_cast<double>(result.horizons.size());
}

int Run() {
  const BenchEnv env = GetBenchEnv();
  const bool fast = std::getenv("D2_FIG7_FAST") != nullptr;
  std::printf("=== Figure 7: parameter sensitivity of D2STGNN on METR-LA "
              "(scale %.3f, %lld epochs) ===\n\n",
              env.scale, static_cast<long long>(env.epochs));

  const PreparedDataset prepared =
      PrepareDataset({"METR-LA", data::MetrLaOptions(env.scale), 0.7f, 0.1f},
                     env);

  // (a) kernel sizes.
  const std::vector<int64_t> kernel_range =
      fast ? std::vector<int64_t>{1, 2} : std::vector<int64_t>{1, 2, 3, 4, 5};
  TablePrinter ks_table({"k_s (k_t=3)", "avg MAE"});
  std::vector<double> ks_mae;
  for (int64_t k : kernel_range) {
    const double mae = TrainWithConfig(prepared, env, k, 3, env.hidden_dim);
    ks_mae.push_back(mae);
    ks_table.AddRow({std::to_string(k), TablePrinter::Num(mae, 3)});
    std::fflush(stdout);
  }
  std::printf("--- Figure 7(a): spatial kernel size ---\n%s\n",
              ks_table.ToString().c_str());

  TablePrinter kt_table({"k_t (k_s=2)", "avg MAE"});
  std::vector<double> kt_mae;
  for (int64_t k : kernel_range) {
    const double mae = TrainWithConfig(prepared, env, 2, k, env.hidden_dim);
    kt_mae.push_back(mae);
    kt_table.AddRow({std::to_string(k), TablePrinter::Num(mae, 3)});
    std::fflush(stdout);
  }
  std::printf("--- Figure 7(a): temporal kernel size ---\n%s\n",
              kt_table.ToString().c_str());

  // (b) hidden dimension.
  const std::vector<int64_t> dims =
      fast ? std::vector<int64_t>{8, 16} : std::vector<int64_t>{4, 8, 16, 32};
  TablePrinter d_table({"hidden d", "avg MAE"});
  std::vector<double> d_mae;
  for (int64_t d : dims) {
    const double mae = TrainWithConfig(prepared, env, 2, 3, d);
    d_mae.push_back(mae);
    d_table.AddRow({std::to_string(d), TablePrinter::Num(mae, 3)});
    std::fflush(stdout);
  }
  std::printf("--- Figure 7(b): hidden dimension ---\n%s\n",
              d_table.ToString().c_str());

  if (!fast) {
    // Shape checks: kernels >= 2 beat kernel 1; the smallest hidden dim is
    // not the best (underfitting).
    const double best_ks = *std::min_element(ks_mae.begin() + 1, ks_mae.end());
    const double best_d = *std::min_element(d_mae.begin(), d_mae.end());
    std::printf("checks: k_s>1 helps: %s; k_t>1 helps: %s; smallest d "
                "suboptimal: %s\n",
                best_ks <= ks_mae[0] ? "yes" : "NO",
                *std::min_element(kt_mae.begin() + 1, kt_mae.end()) <=
                        kt_mae[0]
                    ? "yes"
                    : "NO",
                d_mae[0] > best_d ? "yes" : "NO");
  }
  return 0;
}

}  // namespace
}  // namespace d2stgnn::bench

int main() { return d2stgnn::bench::Run(); }
