// Serving-latency benchmark for the forward-only inference engine.
//
// Sweeps the InferenceSession across execution threads {1, 2, 4} and batch
// sizes {1, 4, 8}, reporting per-call p50/p95/p99 latency and request
// throughput, then drives the BatchingServer with closed-loop concurrent
// producers for the end-to-end serving numbers, and finally A/Bs plan
// replay against the eager path on single requests (DESIGN.md §10) —
// verifying the forecasts are bitwise identical and gating on the
// plan-speedup acceptance floor. Machine-readable results go to
// bench/results/BENCH_inference.json and BENCH_plan.json, with canonical
// copies at the repo root (override the results directory with
// D2STGNN_BENCH_OUT_DIR); BENCH_plan.json's `summary` records the headline
// acceptance ratio — plan vs eager single-request p50 on 4 threads.
//
// `bench_inference --plan` runs only the plan-vs-eager sweep (the CI smoke
// shape): reduced iterations, no speedup gate (CI boxes are noisy), but the
// bitwise-parity check still applies.
//
// Knobs (environment):
//   D2STGNN_INFER_BENCH_ITERS      timed calls per configuration (default 40)
//   D2STGNN_INFER_BENCH_SERVER_REQS  requests per server producer (default 80)
//   D2STGNN_PLAN_BENCH_ITERS       plan-A/B calls per mode (default 200)
//   D2STGNN_PLAN_SPEEDUP_MIN       full-run gate on plan speedup at 4
//                                  threads (default 1.3; 0 disables)

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/d2stgnn.h"
#include "data/sliding_window.h"
#include "data/synthetic_traffic.h"
#include "infer/batching_server.h"
#include "infer/session.h"
#include "metrics/metrics.h"

namespace d2stgnn {
namespace {

constexpr int64_t kNodes = 4;
constexpr int64_t kInputLen = 12;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoll(value) : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

struct BenchRecord {
  std::string mode;  // "session" or "server"
  int threads = 1;
  int64_t batch_size = 1;
  int64_t requests = 0;
  metrics::LatencyStats latency_ms;
  double throughput_rps = 0.0;
};

struct Workload {
  data::SyntheticTraffic traffic;
  data::StandardScaler scaler;
  std::unique_ptr<infer::InferenceSession> session;
  std::vector<infer::ForecastRequest> requests;  // a ring of real windows
};

// A fresh session over deterministically-initialized weights (seed 3), so
// plan and eager sessions built from the same traffic compare bitwise.
std::unique_ptr<infer::InferenceSession> BuildSession(
    const data::SyntheticTraffic& traffic, const data::StandardScaler& scaler,
    bool use_plans) {
  core::D2StgnnConfig config;
  config.num_nodes = kNodes;
  config.input_len = kInputLen;
  config.output_len = 12;
  config.hidden_dim = 8;
  config.embed_dim = 4;
  config.num_layers = 1;
  config.num_heads = 2;
  config.steps_per_day = traffic.dataset.steps_per_day;
  Rng rng(3);
  auto model = std::make_unique<core::D2Stgnn>(
      config, traffic.dataset.network.adjacency, rng);

  infer::SessionOptions session_options;
  session_options.num_nodes = kNodes;
  session_options.input_len = kInputLen;
  session_options.steps_per_day = traffic.dataset.steps_per_day;
  session_options.use_plans = use_plans;
  return infer::InferenceSession::Wrap(std::move(model), scaler,
                                       session_options);
}

Workload BuildWorkload() {
  Workload w;
  data::SyntheticTrafficOptions options;
  options.network.num_nodes = kNodes;
  options.network.neighbors = 2;
  options.num_steps = 600;
  options.seed = 17;
  w.traffic = data::GenerateSyntheticTraffic(options);
  w.scaler.Fit(w.traffic.dataset.values, 400, true);
  w.session = BuildSession(w.traffic, w.scaler, /*use_plans=*/true);

  const std::vector<float>& values = w.traffic.dataset.values.Data();
  for (int64_t start = 0; start < 64; ++start) {
    infer::ForecastRequest request;
    request.window.assign(values.data() + start * kNodes,
                          values.data() + (start + kInputLen) * kNodes);
    request.time_of_day = w.traffic.dataset.TimeOfDay(start);
    request.day_of_week = w.traffic.dataset.DayOfWeek(start);
    w.requests.push_back(std::move(request));
  }
  return w;
}

// Direct PredictRequests calls at a fixed batch size: the cost of one
// coalesced forward, and how batching amortizes it per request.
BenchRecord BenchSession(Workload& w, int threads, int64_t batch_size,
                         int64_t iters) {
  SetNumThreads(threads);
  std::vector<infer::ForecastRequest> batch;
  for (int64_t i = 0; i < batch_size; ++i) {
    batch.push_back(w.requests[static_cast<size_t>(i) % w.requests.size()]);
  }
  w.session->Warmup(batch_size, /*runs=*/2);

  using clock = std::chrono::steady_clock;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<size_t>(iters));
  const auto sweep_start = clock::now();
  for (int64_t i = 0; i < iters; ++i) {
    const auto start = clock::now();
    const std::vector<infer::Forecast> results =
        w.session->PredictRequests(batch);
    for (const infer::Forecast& f : results) {
      if (!f.ok) {
        std::fprintf(stderr, "bench forward failed: %s\n", f.error.c_str());
        std::exit(1);
      }
    }
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(clock::now() - start)
            .count());
  }
  const double elapsed =
      std::chrono::duration<double>(clock::now() - sweep_start).count();

  BenchRecord r;
  r.mode = "session";
  r.threads = threads;
  r.batch_size = batch_size;
  r.requests = iters * batch_size;
  r.latency_ms = metrics::SummarizeLatencies(latencies_ms);
  r.throughput_rps = static_cast<double>(r.requests) / elapsed;
  return r;
}

// Closed-loop producers against the BatchingServer: each submits its next
// request as soon as the previous future resolves, so the dispatcher always
// has traffic to coalesce — the saturated end-to-end serving throughput.
BenchRecord BenchServer(Workload& w, int threads, int producers,
                        int64_t per_producer) {
  SetNumThreads(threads);
  infer::BatchingOptions options;
  options.max_batch_size = 8;
  options.max_wait_us = 500;
  infer::BatchingServer server(w.session.get(), options);

  using clock = std::chrono::steady_clock;
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(producers));
  const auto start = clock::now();
  std::vector<std::thread> workers;
  for (int p = 0; p < producers; ++p) {
    workers.emplace_back([&, p] {
      std::vector<double>& mine = latencies[static_cast<size_t>(p)];
      mine.reserve(static_cast<size_t>(per_producer));
      for (int64_t i = 0; i < per_producer; ++i) {
        const infer::ForecastRequest& request =
            w.requests[static_cast<size_t>(p * per_producer + i) %
                       w.requests.size()];
        const auto submit = clock::now();
        infer::Forecast f = server.Submit(request).get();
        if (!f.ok) {
          std::fprintf(stderr, "server request failed: %s\n",
                       f.error.c_str());
          std::exit(1);
        }
        mine.push_back(
            std::chrono::duration<double, std::milli>(clock::now() - submit)
                .count());
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  server.Shutdown();

  std::vector<double> all;
  for (const std::vector<double>& chunk : latencies) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  BenchRecord r;
  r.mode = "server";
  r.threads = threads;
  r.batch_size = options.max_batch_size;
  r.requests = static_cast<int64_t>(all.size());
  r.latency_ms = metrics::SummarizeLatencies(all);
  r.throughput_rps = static_cast<double>(all.size()) / elapsed;
  return r;
}

// Plan replay vs eager dispatch on single requests: the same request stream
// through two sessions around identical weights, one serving from a warmed
// execution plan, one always eager. Also asserts the two paths forecast
// bitwise identically — a perf mode that changed the numbers would be a
// correctness bug, not a win.
std::pair<BenchRecord, BenchRecord> BenchPlanVsEager(
    Workload& w, infer::InferenceSession& eager_session, int threads,
    int64_t iters) {
  SetNumThreads(threads);
  w.session->Warmup(/*batch_size=*/1, /*runs=*/2);

  const auto time_one = [&](infer::InferenceSession& session,
                            const char* mode) {
    using clock = std::chrono::steady_clock;
    std::vector<double> latencies_ms;
    latencies_ms.reserve(static_cast<size_t>(iters));
    const auto sweep_start = clock::now();
    for (int64_t i = 0; i < iters; ++i) {
      const auto start = clock::now();
      const infer::Forecast f = session.PredictOne(
          w.requests[static_cast<size_t>(i) % w.requests.size()]);
      if (!f.ok) {
        std::fprintf(stderr, "%s forward failed: %s\n", mode,
                     f.error.c_str());
        std::exit(1);
      }
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(clock::now() - start)
              .count());
    }
    const double elapsed =
        std::chrono::duration<double>(clock::now() - sweep_start).count();
    BenchRecord r;
    r.mode = mode;
    r.threads = threads;
    r.batch_size = 1;
    r.requests = iters;
    r.latency_ms = metrics::SummarizeLatencies(latencies_ms);
    r.throughput_rps = static_cast<double>(r.requests) / elapsed;
    return r;
  };

  // Bitwise parity before timing: every request in the ring agrees.
  for (const infer::ForecastRequest& request : w.requests) {
    const infer::Forecast plan = w.session->PredictOne(request);
    const infer::Forecast eager = eager_session.PredictOne(request);
    if (!plan.ok || !eager.ok || plan.values != eager.values) {
      std::fprintf(stderr,
                   "plan and eager forecasts diverge at %d threads\n",
                   threads);
      std::exit(1);
    }
  }
  if (w.session->session_stats().plan_replays == 0) {
    std::fprintf(stderr, "plan session never replayed a plan\n");
    std::exit(1);
  }

  const BenchRecord eager = time_one(eager_session, "eager");
  const BenchRecord plan = time_one(*w.session, "plan");
  return {eager, plan};
}

int WritePlanJson(const std::string& path,
                  const std::vector<BenchRecord>& records,
                  double eager_p50_4t, double plan_p50_4t) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"hardware_concurrency\": %u,\n  \"records\": [\n",
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"threads\": %d, \"batch_size\": %lld, "
        "\"requests\": %lld, \"p50_ms\": %.6f, \"p95_ms\": %.6f, "
        "\"p99_ms\": %.6f, \"mean_ms\": %.6f, \"max_ms\": %.6f, "
        "\"throughput_rps\": %.3f}%s\n",
        r.mode.c_str(), r.threads, static_cast<long long>(r.batch_size),
        static_cast<long long>(r.requests), r.latency_ms.p50,
        r.latency_ms.p95, r.latency_ms.p99, r.latency_ms.mean,
        r.latency_ms.max, r.throughput_rps,
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"summary\": {\"eager_p50_ms_4t\": %.6f, "
               "\"plan_p50_ms_4t\": %.6f, \"plan_speedup_4t\": %.3f, "
               "\"bitwise_identical\": true}\n}\n",
               eager_p50_4t, plan_p50_4t,
               plan_p50_4t > 0.0 ? eager_p50_4t / plan_p50_4t : 0.0);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

void PrintRecord(const BenchRecord& r) {
  std::printf(
      "%-7s threads=%d batch=%-2lld  p50 %7.3f ms  p95 %7.3f ms  "
      "p99 %7.3f ms  %9.1f req/s\n",
      r.mode.c_str(), r.threads, static_cast<long long>(r.batch_size),
      r.latency_ms.p50, r.latency_ms.p95, r.latency_ms.p99,
      r.throughput_rps);
}

int WriteJson(const std::string& path, const std::vector<BenchRecord>& records,
              double single_rps, double batch8_rps) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"hardware_concurrency\": %u,\n  \"records\": [\n",
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"threads\": %d, \"batch_size\": %lld, "
        "\"requests\": %lld, \"p50_ms\": %.6f, \"p95_ms\": %.6f, "
        "\"p99_ms\": %.6f, \"mean_ms\": %.6f, \"max_ms\": %.6f, "
        "\"throughput_rps\": %.3f}%s\n",
        r.mode.c_str(), r.threads, static_cast<long long>(r.batch_size),
        static_cast<long long>(r.requests), r.latency_ms.p50,
        r.latency_ms.p95, r.latency_ms.p99, r.latency_ms.mean,
        r.latency_ms.max, r.throughput_rps,
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"summary\": {\"single_request_rps_4t\": %.3f, "
               "\"batch8_rps_4t\": %.3f, \"batch8_speedup_vs_single\": "
               "%.3f}\n}\n",
               single_rps, batch8_rps,
               single_rps > 0.0 ? batch8_rps / single_rps : 0.0);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int Run(bool plan_only) {
  const int64_t iters = EnvInt("D2STGNN_INFER_BENCH_ITERS", 40);
  const int64_t server_reqs = EnvInt("D2STGNN_INFER_BENCH_SERVER_REQS", 80);
  const int64_t plan_iters =
      EnvInt("D2STGNN_PLAN_BENCH_ITERS", plan_only ? 20 : 200);
  Workload w = BuildWorkload();
  if (w.session == nullptr) {
    std::fprintf(stderr, "failed to build inference session\n");
    return 1;
  }

  const char* out_dir = std::getenv("D2STGNN_BENCH_OUT_DIR");
  const std::string dir =
      out_dir != nullptr ? out_dir : D2STGNN_BENCH_RESULTS_DIR;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  // Canonical copies land at the repo root so the latest numbers are one
  // `cat` away; the results directory keeps the versioned trajectory.
  const std::string root = D2STGNN_REPO_ROOT;

  if (!plan_only) {
    std::vector<BenchRecord> records;
    double single_rps_4t = 0.0;
    double batch8_rps_4t = 0.0;
    for (int threads : {1, 2, 4}) {
      for (int64_t batch_size : {1, 4, 8}) {
        const BenchRecord r = BenchSession(w, threads, batch_size, iters);
        PrintRecord(r);
        if (threads == 4 && batch_size == 1) single_rps_4t = r.throughput_rps;
        if (threads == 4 && batch_size == 8) batch8_rps_4t = r.throughput_rps;
        records.push_back(r);
      }
    }
    for (int threads : {1, 2, 4}) {
      const BenchRecord r =
          BenchServer(w, threads, /*producers=*/4, server_reqs);
      PrintRecord(r);
      records.push_back(r);
    }

    const double speedup =
        single_rps_4t > 0.0 ? batch8_rps_4t / single_rps_4t : 0.0;
    std::printf("batch-8 throughput on 4 threads: %.1f req/s = %.2fx "
                "single-request (%.1f req/s)\n",
                batch8_rps_4t, speedup, single_rps_4t);
    if (WriteJson(dir + "/BENCH_inference.json", records, single_rps_4t,
                  batch8_rps_4t) != 0 ||
        WriteJson(root + "/BENCH_inference.json", records, single_rps_4t,
                  batch8_rps_4t) != 0) {
      return 1;
    }
  }

  // Plan-vs-eager A/B. The eager twin shares the workload's weights (same
  // init seed) so the parity check inside the sweep is bitwise.
  auto eager_session = BuildSession(w.traffic, w.scaler, /*use_plans=*/false);
  if (eager_session == nullptr) {
    std::fprintf(stderr, "failed to build eager session\n");
    return 1;
  }
  std::vector<BenchRecord> plan_records;
  double eager_p50_4t = 0.0;
  double plan_p50_4t = 0.0;
  for (int threads : {1, 2, 4}) {
    const auto [eager, plan] =
        BenchPlanVsEager(w, *eager_session, threads, plan_iters);
    PrintRecord(eager);
    PrintRecord(plan);
    if (threads == 4) {
      eager_p50_4t = eager.latency_ms.p50;
      plan_p50_4t = plan.latency_ms.p50;
    }
    plan_records.push_back(eager);
    plan_records.push_back(plan);
  }
  SetNumThreads(1);

  const double plan_speedup =
      plan_p50_4t > 0.0 ? eager_p50_4t / plan_p50_4t : 0.0;
  std::printf("plan replay on 4 threads: p50 %.3f ms = %.2fx eager "
              "(p50 %.3f ms), bitwise identical\n",
              plan_p50_4t, plan_speedup, eager_p50_4t);

  if (WritePlanJson(dir + "/BENCH_plan.json", plan_records, eager_p50_4t,
                    plan_p50_4t) != 0 ||
      WritePlanJson(root + "/BENCH_plan.json", plan_records, eager_p50_4t,
                    plan_p50_4t) != 0) {
    return 1;
  }

  // Acceptance gate (full runs only — the --plan smoke runs on noisy CI
  // boxes with a handful of iterations).
  const double speedup_min =
      plan_only ? 0.0 : EnvDouble("D2STGNN_PLAN_SPEEDUP_MIN", 1.3);
  if (speedup_min > 0.0 && plan_speedup < speedup_min) {
    std::fprintf(stderr,
                 "FAIL: plan speedup %.2fx is below the %.2fx floor\n",
                 plan_speedup, speedup_min);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace d2stgnn

int main(int argc, char** argv) {
  bool plan_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--plan") plan_only = true;
  }
  return d2stgnn::Run(plan_only);
}
