// Reproduces Table 3: traffic forecasting on METR-LA, PEMS-BAY, PEMS04 and
// PEMS08 — all methods x horizons {3, 6, 12} x {MAE, RMSE, MAPE}.
//
// The absolute numbers differ from the paper (synthetic data, bench scale,
// few epochs — see DESIGN.md); the reproduction target is the ordering:
// statistical methods (HA/VAR/SVR) < FC-LSTM < graph deep models, with
// D2STGNN best or near-best on every dataset.
//
// Env knobs: D2_BENCH_SCALE, D2_BENCH_EPOCHS, D2_BENCH_TRAIN_SAMPLES, ...
// (see bench_common.h). D2_BENCH_DATASETS limits the run, e.g.
// D2_BENCH_DATASETS=METR-LA,PEMS08.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "baselines/historical_average.h"
#include "baselines/linear_svr.h"
#include "baselines/var.h"
#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "train/evaluator.h"

namespace d2stgnn::bench {
namespace {

bool DatasetEnabled(const std::string& name) {
  const char* filter = std::getenv("D2_BENCH_DATASETS");
  if (filter == nullptr) return true;
  return std::strstr(filter, name.c_str()) != nullptr;
}

int Run() {
  const BenchEnv env = GetBenchEnv();
  std::printf("=== Table 3: main comparison (scale %.3f, %lld epochs, "
              "d=%lld) ===\n\n",
              env.scale, static_cast<long long>(env.epochs),
              static_cast<long long>(env.hidden_dim));

  const std::vector<std::string> deep_models = {
      "FC-LSTM", "DCRNN", "STGCN",  "GWNet", "ASTGCN",
      "STSGCN",  "MTGNN", "GMAN",   "DGCRN", "D2STGNN"};

  for (const data::DatasetPreset& preset : data::AllPresets(env.scale)) {
    if (!DatasetEnabled(preset.name)) continue;
    Stopwatch dataset_timer;
    const PreparedDataset prepared = PrepareDataset(preset, env);
    const Tensor test_truth =
        GatherTargets(prepared.dataset(), prepared.splits.test, 12, 12);

    TablePrinter table({"Method", "H3 MAE", "H3 RMSE", "H3 MAPE", "H6 MAE",
                        "H6 RMSE", "H6 MAPE", "H12 MAE", "H12 RMSE",
                        "H12 MAPE"});
    std::map<std::string, double> h12_mae;

    auto add_prediction_row = [&](const std::string& name,
                                  const Tensor& prediction) {
      const auto horizons =
          train::EvaluatePredictionHorizons(prediction, test_truth);
      std::vector<std::string> row = {name};
      for (const auto& h : horizons) {
        for (const std::string& cell : MetricCells(h.metrics)) {
          row.push_back(cell);
        }
      }
      h12_mae[name] = horizons.back().metrics.mae;
      table.AddRow(row);
    };

    // Statistical baselines.
    {
      baselines::HistoricalAverage ha;
      ha.Fit(prepared.dataset(), prepared.train_steps);
      add_prediction_row(
          "HA", ha.Predict(prepared.dataset(), prepared.splits.test, 12, 12));
    }
    {
      baselines::Var var(3);
      var.Fit(prepared.dataset(), prepared.train_steps);
      add_prediction_row(
          "VAR",
          var.Predict(prepared.dataset(), prepared.splits.test, 12, 12));
    }
    {
      baselines::LinearSvr svr;
      svr.Fit(prepared.dataset(), prepared.train_steps, 12, 12);
      add_prediction_row(
          "SVR",
          svr.Predict(prepared.dataset(), prepared.splits.test, 12, 12));
    }
    table.AddSeparator();

    // Deep models, shared training recipe.
    for (const std::string& name : deep_models) {
      const TrainedModelResult result =
          TrainAndEvaluateModel(name, prepared, env);
      std::vector<std::string> row = {name};
      for (const auto& h : result.horizons) {
        for (const std::string& cell : MetricCells(h.metrics)) {
          row.push_back(cell);
        }
      }
      h12_mae[name] = result.horizons.back().metrics.mae;
      table.AddRow(row);
      std::fflush(stdout);
    }

    std::printf("--- %s (test windows: %zu) ---\n%s", preset.name.c_str(),
                prepared.splits.test.size(), table.ToString().c_str());

    // Shape checks mirroring the paper's findings.
    const double best_stat =
        std::min({h12_mae["HA"], h12_mae["VAR"], h12_mae["SVR"]});
    double best_deep = 1e30;
    std::string best_deep_name;
    for (const std::string& name : deep_models) {
      if (h12_mae[name] < best_deep) {
        best_deep = h12_mae[name];
        best_deep_name = name;
      }
    }
    std::printf("checks: best deep model = %s (H12 MAE %.2f); "
                "deep beats statistical baselines: %s; "
                "D2STGNN within 5%% of best: %s\n",
                best_deep_name.c_str(), best_deep,
                best_deep < best_stat ? "yes" : "NO",
                h12_mae["D2STGNN"] <= 1.05 * best_deep ? "yes" : "NO");
    std::printf("dataset wall clock: %.1fs\n\n", dataset_timer.ElapsedSeconds());
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace d2stgnn::bench

int main() { return d2stgnn::bench::Run(); }
