// Reproduces Figure 8: visualization of D2STGNN's predictions vs. ground
// truth on two nodes of METR-LA over several consecutive test days,
// including robustness to sensor-failure zeros (the model should ride
// through failure bursts instead of fitting them).
//
// Renders ASCII line charts and writes out/fig8_node<i>.csv (an ignored
// output directory) for external plotting.

#include <cstdio>
#include <filesystem>
#include <vector>

#include "experiment/protocol.h"
#include "common/text_plot.h"
#include "core/d2stgnn.h"
#include "train/evaluator.h"

namespace d2stgnn::bench {
using namespace d2stgnn::experiment;  // the shared measurement protocol
namespace {

int Run() {
  const BenchEnv env = GetBenchEnv();
  std::printf("=== Figure 8: prediction vs. ground truth on METR-LA "
              "(scale %.3f, %lld epochs) ===\n\n",
              env.scale, static_cast<long long>(env.epochs));

  PreparedDataset prepared =
      PrepareDataset({"METR-LA", data::MetrLaOptions(env.scale), 0.7f, 0.1f},
                     env);

  // Train the full model.
  core::D2StgnnConfig config;
  config.num_nodes = prepared.dataset().num_nodes();
  config.hidden_dim = env.hidden_dim;
  config.embed_dim = env.embed_dim;
  config.steps_per_day = prepared.dataset().steps_per_day;
  Rng rng(env.seed);
  core::D2Stgnn model(config, prepared.dataset().network.adjacency, rng);
  TrainAndEvaluateModel(&model, prepared, env);

  // Roll horizon-1 predictions over a contiguous stretch of the test split
  // (two synthetic days), mirroring the paper's continuous curves.
  const int64_t steps_per_day = prepared.dataset().steps_per_day;
  const int64_t plot_len = 2 * steps_per_day;
  const auto full_splits = data::MakeChronologicalSplits(
      prepared.dataset().num_steps(), 12, 12, 0.7f, 0.1f);
  std::vector<int64_t> starts;
  for (int64_t i = 0;
       i < plot_len && i < static_cast<int64_t>(full_splits.test.size());
       ++i) {
    starts.push_back(full_splits.test[static_cast<size_t>(i)]);
  }
  data::WindowDataLoader plot_loader(&prepared.dataset(), &prepared.scaler,
                                     starts, 12, 12, env.batch_size);
  const Tensor predictions =
      train::CollectPredictions(&model, &prepared.scaler, &plot_loader);
  const Tensor truth = GatherTargets(prepared.dataset(), starts, 12, 12);

  // Pick two nodes with different characters: the node with the most
  // failure zeros in the plotted range and the node with the fewest.
  const int64_t n = prepared.dataset().num_nodes();
  std::vector<int64_t> zeros(static_cast<size_t>(n), 0);
  for (int64_t w = 0; w < truth.size(0); ++w) {
    for (int64_t i = 0; i < n; ++i) {
      if (truth.At({w, 0, i, 0}) == 0.0f) ++zeros[static_cast<size_t>(i)];
    }
  }
  int64_t clean_node = 0, failing_node = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (zeros[static_cast<size_t>(i)] < zeros[static_cast<size_t>(clean_node)]) clean_node = i;
    if (zeros[static_cast<size_t>(i)] > zeros[static_cast<size_t>(failing_node)]) failing_node = i;
  }

  for (int64_t node : {clean_node, failing_node}) {
    PlotSeries truth_series{"ground truth", {}, '.'};
    PlotSeries pred_series{"D2STGNN (horizon 1)", {}, '*'};
    for (int64_t w = 0; w < truth.size(0); ++w) {
      truth_series.values.push_back(truth.At({w, 0, node, 0}));
      pred_series.values.push_back(predictions.At({w, 0, node, 0}));
    }
    std::printf("--- node (sensor) %lld%s ---\n",
                static_cast<long long>(node),
                node == failing_node ? " [has sensor-failure zeros]" : "");
    std::printf("%s\n", TextPlot({truth_series, pred_series}, 110, 18).c_str());
    std::error_code ec;
    std::filesystem::create_directories("out", ec);
    const std::string csv =
        "out/fig8_node" + std::to_string(node) + ".csv";
    if (WriteSeriesCsv(csv, {truth_series, pred_series})) {
      std::printf("wrote %s\n\n", csv.c_str());
    }
  }

  // Robustness check: during failure zeros, the prediction should stay
  // near the node's typical level instead of collapsing to zero.
  double pred_during_failures = 0.0;
  int64_t failure_count = 0;
  double node_mean = 0.0;
  int64_t node_count = 0;
  for (int64_t w = 0; w < truth.size(0); ++w) {
    const float t = truth.At({w, 0, failing_node, 0});
    if (t == 0.0f) {
      pred_during_failures += predictions.At({w, 0, failing_node, 0});
      ++failure_count;
    } else {
      node_mean += t;
      ++node_count;
    }
  }
  if (failure_count > 0 && node_count > 0) {
    pred_during_failures /= static_cast<double>(failure_count);
    node_mean /= static_cast<double>(node_count);
    std::printf("checks: during %lld failure steps mean prediction %.1f vs "
                "node mean %.1f — model does not fit the zeros: %s\n",
                static_cast<long long>(failure_count), pred_during_failures,
                node_mean,
                pred_during_failures > 0.4 * node_mean ? "yes" : "NO");
  } else {
    std::printf("note: no failure zeros in the plotted range at this "
                "scale\n");
  }
  return 0;
}

}  // namespace
}  // namespace d2stgnn::bench

int main() { return d2stgnn::bench::Run(); }
