// google-benchmark microbenchmarks of the kernels that dominate D2STGNN
// training: batched matmul, softmax, the localized transition construction,
// one decoupled-layer forward, and a full forward+backward step.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/d2stgnn.h"
#include "data/synthetic_traffic.h"
#include "graph/localized_transition.h"
#include "graph/transition.h"
#include "metrics/metrics.h"
#include "tensor/ops.h"

namespace d2stgnn {
namespace {

void BM_MatMul2D(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul2D)->Arg(32)->Arg(64)->Arg(128);

void BM_BatchedMatMulBroadcast(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(1);
  Tensor p = Tensor::Randn({20, 60}, rng);     // [N, kt*N]
  Tensor x = Tensor::Randn({batch, 60, 16}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(p, x));
  }
}
BENCHMARK(BM_BatchedMatMulBroadcast)->Arg(8)->Arg(32);

void BM_Softmax(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::Randn({64, 12, 12}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(a, -1));
  }
}
BENCHMARK(BM_Softmax);

void BM_LocalizedTransition(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor p = Softmax(Tensor::Randn({n, n}, rng), -1);
  NoGradGuard no_grad;
  for (auto _ : state) {
    for (const Tensor& power : graph::TransitionPowers(p, 2)) {
      benchmark::DoNotOptimize(graph::LocalizedTransition(power, 3));
    }
  }
}
BENCHMARK(BM_LocalizedTransition)->Arg(20)->Arg(50);

// One full D2STGNN training step (forward + masked MAE + backward) at bench
// scale: the end-to-end cost every epoch is made of.
void BM_D2StgnnTrainStep(benchmark::State& state) {
  data::SyntheticTrafficOptions options;
  options.network.num_nodes = 12;
  options.num_steps = 600;
  options.seed = 4;
  const data::SyntheticTraffic traffic = data::GenerateSyntheticTraffic(options);
  data::StandardScaler scaler;
  scaler.Fit(traffic.dataset.values, 400, true);
  const auto splits = data::MakeChronologicalSplits(600, 12, 12, 0.7f, 0.1f);
  data::WindowDataLoader loader(&traffic.dataset, &scaler, splits.train, 12,
                                12, 8);
  const data::Batch batch = loader.GetBatch(0);

  core::D2StgnnConfig config;
  config.num_nodes = 12;
  config.hidden_dim = 16;
  config.embed_dim = 8;
  Rng rng(2);
  core::D2Stgnn model(config, traffic.dataset.network.adjacency, rng);
  for (auto _ : state) {
    Tensor loss = metrics::MaskedMaeLoss(
        scaler.InverseTransform(model.Forward(batch)), batch.y);
    model.ZeroGrad();
    loss.Backward();
    benchmark::DoNotOptimize(loss.Item());
  }
}
BENCHMARK(BM_D2StgnnTrainStep)->Unit(benchmark::kMillisecond);

// Inference-only forward pass (NoGrad) for deployment-style latency.
void BM_D2StgnnInference(benchmark::State& state) {
  data::SyntheticTrafficOptions options;
  options.network.num_nodes = 12;
  options.num_steps = 600;
  options.seed = 4;
  const data::SyntheticTraffic traffic = data::GenerateSyntheticTraffic(options);
  data::StandardScaler scaler;
  scaler.Fit(traffic.dataset.values, 400, true);
  const auto splits = data::MakeChronologicalSplits(600, 12, 12, 0.7f, 0.1f);
  data::WindowDataLoader loader(&traffic.dataset, &scaler, splits.test, 12,
                                12, 8);
  const data::Batch batch = loader.GetBatch(0);

  core::D2StgnnConfig config;
  config.num_nodes = 12;
  config.hidden_dim = 16;
  config.embed_dim = 8;
  Rng rng(2);
  core::D2Stgnn model(config, traffic.dataset.network.adjacency, rng);
  model.SetTraining(false);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(batch));
  }
}
BENCHMARK(BM_D2StgnnInference)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace d2stgnn

BENCHMARK_MAIN();
