// google-benchmark microbenchmarks of the kernels that dominate D2STGNN
// training: batched matmul, softmax, the localized transition construction,
// one decoupled-layer forward, and a full forward+backward step.
//
// The main() additionally sweeps the hot tensor kernels across every kernel
// backend this host can run (scalar reference vs AVX2 — the A/B the
// dispatch layer exists for) at 1/2/4 execution threads, and writes
// machine-readable per-op throughput through the experiment MetricsSink to
// the canonical repo-root BENCH_kernels.json (override the directory with
// D2STGNN_BENCH_OUT_DIR), so successive PRs have a perf trajectory to
// compare against.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/d2stgnn.h"
#include "data/synthetic_traffic.h"
#include "experiment/metrics_sink.h"
#include "graph/localized_transition.h"
#include "graph/transition.h"
#include "metrics/metrics.h"
#include "tensor/kernels/registry.h"
#include "tensor/ops.h"

namespace d2stgnn {
namespace {

void BM_MatMul2D(benchmark::State& state) {
  const int64_t n = state.range(0);
  SetNumThreads(static_cast<int>(state.range(1)));
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.SetLabel("threads=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_MatMul2D)
    ->Args({32, 1})
    ->Args({64, 1})
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 4});

void BM_BatchedMatMulBroadcast(benchmark::State& state) {
  const int64_t batch = state.range(0);
  SetNumThreads(static_cast<int>(state.range(1)));
  Rng rng(1);
  Tensor p = Tensor::Randn({20, 60}, rng);     // [N, kt*N]
  Tensor x = Tensor::Randn({batch, 60, 16}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(p, x));
  }
  state.SetLabel("threads=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_BatchedMatMulBroadcast)->Args({8, 1})->Args({32, 1})->Args({32, 4});

void BM_Softmax(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  Rng rng(1);
  Tensor a = Tensor::Randn({64, 12, 12}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(a, -1));
  }
  state.SetLabel("threads=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Softmax)->Arg(1)->Arg(4);

void BM_LocalizedTransition(benchmark::State& state) {
  const int64_t n = state.range(0);
  SetNumThreads(1);
  Rng rng(1);
  Tensor p = Softmax(Tensor::Randn({n, n}, rng), -1);
  NoGradGuard no_grad;
  for (auto _ : state) {
    for (const Tensor& power : graph::TransitionPowers(p, 2)) {
      benchmark::DoNotOptimize(graph::LocalizedTransition(power, 3));
    }
  }
}
BENCHMARK(BM_LocalizedTransition)->Arg(20)->Arg(50);

// One full D2STGNN training step (forward + masked MAE + backward) at bench
// scale: the end-to-end cost every epoch is made of.
void BM_D2StgnnTrainStep(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  data::SyntheticTrafficOptions options;
  options.network.num_nodes = 12;
  options.num_steps = 600;
  options.seed = 4;
  const data::SyntheticTraffic traffic = data::GenerateSyntheticTraffic(options);
  data::StandardScaler scaler;
  scaler.Fit(traffic.dataset.values, 400, true);
  const auto splits = data::MakeChronologicalSplits(600, 12, 12, 0.7f, 0.1f);
  data::WindowDataLoader loader(&traffic.dataset, &scaler, splits.train, 12,
                                12, 8);
  const data::Batch batch = loader.GetBatch(0);

  core::D2StgnnConfig config;
  config.num_nodes = 12;
  config.hidden_dim = 16;
  config.embed_dim = 8;
  Rng rng(2);
  core::D2Stgnn model(config, traffic.dataset.network.adjacency, rng);
  for (auto _ : state) {
    Tensor loss = metrics::MaskedMaeLoss(
        scaler.InverseTransform(model.Forward(batch)), batch.y);
    model.ZeroGrad();
    loss.Backward();
    benchmark::DoNotOptimize(loss.Item());
  }
  state.SetLabel("threads=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_D2StgnnTrainStep)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// Inference-only forward pass (NoGrad) for deployment-style latency.
void BM_D2StgnnInference(benchmark::State& state) {
  SetNumThreads(1);
  data::SyntheticTrafficOptions options;
  options.network.num_nodes = 12;
  options.num_steps = 600;
  options.seed = 4;
  const data::SyntheticTraffic traffic = data::GenerateSyntheticTraffic(options);
  data::StandardScaler scaler;
  scaler.Fit(traffic.dataset.values, 400, true);
  const auto splits = data::MakeChronologicalSplits(600, 12, 12, 0.7f, 0.1f);
  data::WindowDataLoader loader(&traffic.dataset, &scaler, splits.test, 12,
                                12, 8);
  const data::Batch batch = loader.GetBatch(0);

  core::D2StgnnConfig config;
  config.num_nodes = 12;
  config.hidden_dim = 16;
  config.embed_dim = 8;
  Rng rng(2);
  core::D2Stgnn model(config, traffic.dataset.network.adjacency, rng);
  model.SetTraining(false);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(batch));
  }
}
BENCHMARK(BM_D2StgnnInference)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// BENCH_kernels.json: hand-timed per-op throughput, backend x 1/2/4 threads.

struct JsonRecord {
  std::string op;
  std::string workload;
  std::string backend;
  int threads = 1;
  double seconds_per_iter = 0.0;
  double items_per_second = 0.0;  // op-specific unit, see `unit`
  std::string unit;
  double speedup_vs_1t = 1.0;
  /// This backend vs the scalar reference at the same thread count.
  double speedup_vs_scalar = 1.0;
};

// Times fn() with an adaptive iteration count (>= ~200 ms of work).
double TimeSecondsPerIter(const std::function<void()>& fn) {
  fn();  // warm-up (also spins up pool workers)
  int64_t iters = 1;
  for (;;) {
    Stopwatch timer;
    for (int64_t i = 0; i < iters; ++i) fn();
    const double elapsed = timer.ElapsedSeconds();
    if (elapsed >= 0.2 || iters > (1 << 20)) {
      return elapsed / static_cast<double>(iters);
    }
    iters *= 4;
  }
}

// One op measured across every runnable backend and thread count; `items`
// scales items_per_second. AvailableBackendNames() lists "scalar" first, so
// the scalar reference times are always on hand when the vector backends'
// speedup_vs_scalar is computed.
void SweepOp(const std::string& op, const std::string& workload, double items,
             const std::string& unit, const std::function<void()>& fn,
             std::vector<JsonRecord>* records) {
  std::map<int, double> scalar_seconds;  // threads -> scalar s/iter
  for (const std::string& backend : kernels::AvailableBackendNames()) {
    kernels::ScopedBackendOverride scoped(backend);
    double base_seconds = 0.0;
    for (int threads : {1, 2, 4}) {
      SetNumThreads(threads);
      JsonRecord r;
      r.op = op;
      r.workload = workload;
      r.backend = backend;
      r.threads = threads;
      r.seconds_per_iter = TimeSecondsPerIter(fn);
      r.items_per_second = items / r.seconds_per_iter;
      r.unit = unit;
      if (threads == 1) base_seconds = r.seconds_per_iter;
      r.speedup_vs_1t =
          r.seconds_per_iter > 0.0 ? base_seconds / r.seconds_per_iter : 1.0;
      if (backend == "scalar") scalar_seconds[threads] = r.seconds_per_iter;
      const auto scalar = scalar_seconds.find(threads);
      r.speedup_vs_scalar =
          scalar != scalar_seconds.end() && r.seconds_per_iter > 0.0
              ? scalar->second / r.seconds_per_iter
              : 1.0;
      std::printf("kernels.json: %-16s %-22s backend=%-7s threads=%d  "
                  "%.3e s/iter  %.2fx vs 1t  %.2fx vs scalar\n",
                  op.c_str(), workload.c_str(), backend.c_str(), threads,
                  r.seconds_per_iter, r.speedup_vs_1t, r.speedup_vs_scalar);
      records->push_back(r);
    }
  }
}

std::vector<JsonRecord> CollectKernelRecords() {
  std::vector<JsonRecord> records;
  Rng rng(1);
  NoGradGuard no_grad;

  {
    // Batched MatMul: the Table 3 / Fig. 6 hot path.
    const int64_t batch = 16, m = 96, k = 96, n = 96;
    Tensor a = Tensor::Randn({batch, m, k}, rng);
    Tensor b = Tensor::Randn({batch, k, n}, rng);
    const double flops = 2.0 * static_cast<double>(batch * m * k * n);
    SweepOp("batched_matmul", "16x[96,96]x[96,96]", flops, "flops",
            [&] { benchmark::DoNotOptimize(MatMul(a, b)); }, &records);
  }
  {
    // Serving-sized batch 4: the scalar-vs-SIMD acceptance workload (the
    // avx2 backend must clear 2x scalar here — see WriteKernelJson).
    const int64_t batch = 4, m = 96, k = 96, n = 96;
    Tensor a = Tensor::Randn({batch, m, k}, rng);
    Tensor b = Tensor::Randn({batch, k, n}, rng);
    const double flops = 2.0 * static_cast<double>(batch * m * k * n);
    SweepOp("batched_matmul", "4x[96,96]x[96,96]", flops, "flops",
            [&] { benchmark::DoNotOptimize(MatMul(a, b)); }, &records);
  }
  {
    Tensor a = Tensor::Randn({256, 64, 64}, rng);
    SweepOp("softmax", "[256,64,64] dim=-1",
            static_cast<double>(a.numel()), "elements",
            [&] { benchmark::DoNotOptimize(Softmax(a, -1)); }, &records);
  }
  {
    Tensor a = Tensor::Randn({1 << 22}, rng);
    SweepOp("sum", "[4194304]", static_cast<double>(a.numel()), "elements",
            [&] { benchmark::DoNotOptimize(Sum(a)); }, &records);
  }
  {
    Tensor a = Tensor::Randn({1 << 22}, rng);
    Tensor b = Tensor::Randn({1 << 22}, rng);
    SweepOp("ewise_add", "[4194304]", static_cast<double>(a.numel()),
            "elements", [&] { benchmark::DoNotOptimize(Add(a, b)); },
            &records);
  }
  SetNumThreads(1);
  return records;
}

// Routes the sweep through the unified sink: same schema-versioned envelope
// as every run_experiment result.
int WriteKernelJson(const std::string& path,
                    const std::vector<JsonRecord>& records) {
  namespace exp = d2stgnn::experiment;
  exp::MetricsSink sink("kernels", "kernels");
  for (const JsonRecord& r : records) {
    json::Value record = json::Value::Object();
    record.Set("op", json::Value::Str(r.op));
    record.Set("workload", json::Value::Str(r.workload));
    record.Set("backend", json::Value::Str(r.backend));
    record.Set("threads", json::Value::Int(r.threads));
    record.Set("seconds_per_iter", json::Value::Number(r.seconds_per_iter));
    record.Set("items_per_second", json::Value::Number(r.items_per_second));
    record.Set("unit", json::Value::Str(r.unit));
    record.Set("speedup_vs_1t", json::Value::Number(r.speedup_vs_1t));
    record.Set("speedup_vs_scalar", json::Value::Number(r.speedup_vs_scalar));
    sink.AddRecord(std::move(record));
  }
  // Headline A/B: avx2 vs scalar on the serving-sized batch-4 matmul at one
  // thread (the refactor's acceptance bar is >= 2x). Only present when the
  // host runs both backends.
  for (const JsonRecord& r : records) {
    if (r.backend == "avx2" && r.op == "batched_matmul" &&
        r.workload == "4x[96,96]x[96,96]" && r.threads == 1) {
      sink.SetSummary("avx2_batch4_matmul_speedup_vs_scalar",
                      json::Value::Number(r.speedup_vs_scalar));
      std::printf("acceptance: avx2 batched_matmul 4x[96,96]x[96,96] is "
                  "%.2fx scalar at 1 thread (target >= 2x)\n",
                  r.speedup_vs_scalar);
    }
  }
  std::string error;
  if (!sink.WriteJson(path, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace d2stgnn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const char* out_dir = std::getenv("D2STGNN_BENCH_OUT_DIR");
  const std::string dir = out_dir != nullptr ? out_dir : D2STGNN_REPO_ROOT;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  const auto records = d2stgnn::CollectKernelRecords();
  return d2stgnn::WriteKernelJson(dir + "/BENCH_kernels.json", records);
}
