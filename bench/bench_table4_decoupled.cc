// Reproduces Table 4: decoupled vs. coupled spatial-temporal framework.
// All dynamic-graph modules are removed for fairness (Sec. 6.3):
//   GWNet           — Graph WaveNet
//   DGCRN†          — DGCRN with the dynamic adjacency removed
//   D2STGNN‡        — coupled variant (no gate, no residual decomposition)
//   D2STGNN†        — decoupled, pre-defined static graph
//
// Expected shape: D2STGNN† < D2STGNN‡ ≈ GWNet ≈ DGCRN† (lower is better),
// i.e. the decoupling framework, not raw capacity, provides the edge.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace d2stgnn::bench {
namespace {

bool DatasetEnabled(const std::string& name) {
  const char* filter = std::getenv("D2_BENCH_DATASETS");
  if (filter == nullptr) return true;
  return std::strstr(filter, name.c_str()) != nullptr;
}

int Run() {
  const BenchEnv env = GetBenchEnv();
  std::printf("=== Table 4: decoupled vs. coupled framework (scale %.3f, "
              "%lld epochs) ===\n\n",
              env.scale, static_cast<long long>(env.epochs));

  const std::vector<std::pair<std::string, std::string>> models = {
      {"GWNet", "GWNet"},
      {"DGCRN+", "DGCRN-static"},
      {"D2STGNN#", "D2STGNN-coupled"},
      {"D2STGNN+", "D2STGNN-static"},
  };
  // ('+' stands in for the paper's dagger, '#' for the double dagger.)

  for (const data::DatasetPreset& preset : data::AllPresets(env.scale)) {
    if (!DatasetEnabled(preset.name)) continue;
    const PreparedDataset prepared = PrepareDataset(preset, env);

    TablePrinter table({"H", "Metric", "GWNet", "DGCRN+", "D2STGNN#",
                        "D2STGNN+"});
    std::map<std::string, TrainedModelResult> results;
    for (const auto& [label, registry_name] : models) {
      results[label] = TrainAndEvaluateModel(registry_name, prepared, env);
      std::fflush(stdout);
    }

    const char* metric_names[] = {"MAE", "RMSE", "MAPE"};
    for (size_t h = 0; h < 3; ++h) {
      for (int metric = 0; metric < 3; ++metric) {
        std::vector<std::string> row = {
            std::to_string(results.begin()->second.horizons[h].horizon),
            metric_names[metric]};
        for (const auto& [label, registry_name] : models) {
          row.push_back(
              MetricCells(results[label].horizons[h].metrics)[metric]);
        }
        table.AddRow(row);
      }
      if (h + 1 < 3) table.AddSeparator();
    }

    std::printf("--- %s ---\n%s", preset.name.c_str(),
                table.ToString().c_str());
    const double decoupled = results["D2STGNN+"].horizons[2].metrics.mae;
    const double coupled = results["D2STGNN#"].horizons[2].metrics.mae;
    std::printf("checks (H12 MAE): decoupled D2STGNN+ %.2f vs coupled "
                "D2STGNN# %.2f — decoupling helps: %s\n\n",
                decoupled, coupled, decoupled < coupled ? "yes" : "NO");
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace d2stgnn::bench

int main() { return d2stgnn::bench::Run(); }
