// Reproduces Figure 6: average training time per epoch on METR-LA for
// D2STGNN, D2STGNN† (without dynamic graph learning), DGCRN, GMAN, MTGNN
// and Graph WaveNet, under an identical data pipeline and batch size.
//
// Expected shape (paper Sec. 6.4): GWNet and MTGNN are the fastest;
// D2STGNN sits between them and the expensive recurrent/attention models
// (DGCRN, GMAN); removing dynamic graph learning (D2STGNN†) makes D2STGNN
// cheaper. Absolute seconds depend on the host — relative bars matter.

#include <cstdio>
#include <string>
#include <vector>

#include "experiment/protocol.h"
#include "common/table_printer.h"

namespace d2stgnn::bench {
using namespace d2stgnn::experiment;  // the shared measurement protocol
namespace {

int Run() {
  BenchEnv env = GetBenchEnv();
  env.epochs = 2;  // timing only: a couple of epochs is plenty
  std::printf("=== Figure 6: average training time per epoch, METR-LA "
              "(scale %.3f, batch %lld) ===\n\n",
              env.scale, static_cast<long long>(env.batch_size));

  const PreparedDataset prepared =
      PrepareDataset({"METR-LA", data::MetrLaOptions(env.scale), 0.7f, 0.1f},
                     env);

  const std::vector<std::pair<std::string, std::string>> models = {
      {"D2STGNN", "D2STGNN"},   {"D2STGNN+", "D2STGNN-static"},
      {"DGCRN", "DGCRN"},       {"GMAN", "GMAN"},
      {"MTGNN", "MTGNN"},       {"GWNet", "GWNet"},
  };

  TablePrinter table({"Model", "s/epoch", "params", "bar"});
  std::vector<TrainedModelResult> results;
  for (const auto& [label, registry_name] : models) {
    results.push_back(TrainAndEvaluateModel(
        registry_name, prepared, env, [](train::TrainerOptions* options) {
          options->patience = 0;  // no early stopping while timing
        }));
    std::fflush(stdout);
  }
  double max_seconds = 0.0;
  for (const auto& r : results) {
    max_seconds = std::max(max_seconds, r.mean_epoch_seconds);
  }
  for (size_t i = 0; i < models.size(); ++i) {
    const double s = results[i].mean_epoch_seconds;
    const int bar_len =
        max_seconds > 0.0 ? static_cast<int>(40.0 * s / max_seconds) : 0;
    table.AddRow({models[i].first, TablePrinter::Num(s, 3),
                  std::to_string(results[i].parameter_count),
                  std::string(static_cast<size_t>(bar_len), '#')});
  }
  std::printf("%s", table.ToString().c_str());

  const double d2 = results[0].mean_epoch_seconds;
  const double d2_static = results[1].mean_epoch_seconds;
  const double gwnet = results[5].mean_epoch_seconds;
  std::printf("\nchecks: D2STGNN+ faster than D2STGNN (dynamic graph has a "
              "cost): %s; GWNet among fastest: %s\n",
              d2_static < d2 ? "yes" : "NO",
              gwnet <= d2 ? "yes" : "NO");
  return 0;
}

}  // namespace
}  // namespace d2stgnn::bench

int main() { return d2stgnn::bench::Run(); }
